"""Iterative DPhyp vs. the seed-faithful recursive reference.

The explicit-stack rewrite in :mod:`repro.core.dphyp` must be
observationally identical to :mod:`repro.core.dphyp_recursive`: same
csg-cmp-pairs (count, set, and order), same optimal cost, same
neighborhood-call count.  On top of the equivalence, the rewrite must
actually remove the recursion-depth ceiling, and the memoization layer
must be visible through the new stats counters without changing any
result.
"""

import sys

import pytest

from repro.core.dphyp import DPhyp, solve_dphyp
from repro.core.dphyp_recursive import DPhypRecursive, solve_dphyp_recursive
from repro.core.plans import JoinPlanBuilder
from repro.core.stats import SearchStats
from repro.workloads import chain, cycle, star
from repro.workloads.random_queries import (
    random_hypergraph_query,
    random_simple_query,
)


def record_run(solver_class, query, **kwargs):
    """Run a solver recording the exact emission sequence."""
    stats = SearchStats()
    builder = JoinPlanBuilder(query.graph, query.cardinalities, stats=stats)
    solver = solver_class(query.graph, builder, stats, **kwargs)
    emitted = []
    original = solver.emit_csg_cmp

    def recording(s1, s2, edges=None):
        emitted.append((s1, s2))
        original(s1, s2, edges)

    solver.emit_csg_cmp = recording
    plan = solver.run()
    return plan, stats, emitted


class TestEquivalenceWithRecursiveReference:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_hypergraphs_emit_identically(self, seed):
        query = random_hypergraph_query(
            7, seed, n_hyperedges=3, max_hypernode=3, n_islands=2,
            flex_probability=0.3,
        )
        plan_i, stats_i, emitted_i = record_run(DPhyp, query)
        plan_r, stats_r, emitted_r = record_run(DPhypRecursive, query)
        # same pairs, same multiplicity, same order — not just same set
        assert emitted_i == emitted_r
        assert stats_i.ccp_emitted == stats_r.ccp_emitted
        assert stats_i.neighborhood_calls == stats_r.neighborhood_calls
        assert stats_i.table_entries == stats_r.table_entries
        assert (plan_i is None) == (plan_r is None)
        if plan_i is not None:
            assert plan_i.cost == pytest.approx(plan_r.cost)
            assert plan_i.join_order() == plan_r.join_order()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_simple_graphs_emit_identically(self, seed):
        query = random_simple_query(7, seed, extra_edge_probability=0.4)
        _, stats_i, emitted_i = record_run(DPhyp, query)
        _, stats_r, emitted_r = record_run(DPhypRecursive, query)
        assert emitted_i == emitted_r
        assert stats_i.ccp_emitted == stats_r.ccp_emitted

    @pytest.mark.parametrize(
        "query",
        [chain(9, seed=1), cycle(8, seed=2), star(6, seed=3)],
        ids=["chain", "cycle", "star"],
    )
    def test_paper_shapes_emit_identically(self, query):
        plan_i, stats_i, emitted_i = record_run(DPhyp, query)
        plan_r, stats_r, emitted_r = record_run(DPhypRecursive, query)
        assert emitted_i == emitted_r
        assert stats_i.ccp_emitted == stats_r.ccp_emitted
        assert plan_i.cost == pytest.approx(plan_r.cost)

    def test_wrappers_agree(self):
        query = cycle(6, seed=4)
        plan_i = solve_dphyp(
            query.graph, JoinPlanBuilder(query.graph, query.cardinalities)
        )
        plan_r = solve_dphyp_recursive(
            query.graph, JoinPlanBuilder(query.graph, query.cardinalities)
        )
        assert plan_i.cost == pytest.approx(plan_r.cost)


class TestRecursionCeilingRemoved:
    def test_long_chain_under_tight_recursion_limit(self):
        """The seed recursed once per grown subgraph, so a chain of n
        relations needed ~n stack frames; the explicit stack needs a
        constant number regardless of n."""
        query = chain(64, seed=0)
        limit = sys.getrecursionlimit()

        def depth():
            frame = sys._getframe()
            n = 0
            while frame is not None:
                n += 1
                frame = frame.f_back
            return n

        sys.setrecursionlimit(depth() + 50)
        try:
            stats = SearchStats()
            builder = JoinPlanBuilder(
                query.graph, query.cardinalities, stats=stats
            )
            plan = DPhyp(query.graph, builder, stats).run()
        finally:
            sys.setrecursionlimit(limit)
        assert plan is not None
        assert stats.ccp_emitted == (64 ** 3 - 64) // 6

    def test_recursive_reference_hits_the_old_ceiling(self):
        """Sanity check that the ceiling the rewrite removes is real."""
        query = chain(64, seed=0)
        limit = sys.getrecursionlimit()

        def depth():
            frame = sys._getframe()
            n = 0
            while frame is not None:
                n += 1
                frame = frame.f_back
            return n

        sys.setrecursionlimit(depth() + 50)
        try:
            builder = JoinPlanBuilder(query.graph, query.cardinalities)
            with pytest.raises(RecursionError):
                DPhypRecursive(query.graph, builder).run()
        finally:
            sys.setrecursionlimit(limit)


class TestMemoizationKnob:
    def test_cache_counters_populated(self):
        query = star(7, seed=0)
        _, stats, _ = record_run(DPhyp, query)
        assert stats.neighborhood_cache_misses > 0
        assert stats.neighborhood_cache_hits > 0
        as_dict = stats.as_dict()
        assert as_dict["neighborhood_cache_hits"] == (
            stats.neighborhood_cache_hits
        )
        assert as_dict["neighborhood_cache_misses"] == (
            stats.neighborhood_cache_misses
        )

    def test_knob_off_disables_cache_and_changes_nothing(self):
        query = random_hypergraph_query(7, 3, n_hyperedges=3, n_islands=2)
        plan_on, stats_on, emitted_on = record_run(DPhyp, query)
        plan_off, stats_off, emitted_off = record_run(
            DPhyp, query, memoize_neighborhoods=False
        )
        assert stats_off.neighborhood_cache_hits == 0
        assert stats_off.neighborhood_cache_misses == 0
        assert emitted_on == emitted_off
        assert stats_on.ccp_emitted == stats_off.ccp_emitted
        assert plan_on.cost == pytest.approx(plan_off.cost)

"""Tests for SES computation and the CalcTES conflict analysis."""

import pytest

from repro.algebra.expr import Aggregate, Equals, FunctionPredicate, attr
from repro.algebra.operators import ANTI, FULL_OUTER, JOIN, LEFT_OUTER, NEST, SEMI
from repro.algebra.optree import Relation, leaf, node
from repro.algebra.ses import ses_tables
from repro.algebra.tes import analyze
from repro.core import bitset


def rel(name):
    return leaf(Relation(name=name, cardinality=10.0))


def eq(a, b, sel=0.1):
    return Equals(attr(a), attr(b), selectivity=sel)


def info_for(analysis, op_node):
    for info in analysis.operators:
        if info.node is op_node:
            return info
    raise AssertionError("operator not analyzed")


class TestSES:
    def test_plain_predicate(self):
        tree = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        assert ses_tables(tree) == {"R", "S"}

    def test_intersected_with_subtree(self):
        """Tables outside T(o) — e.g. aggregate pseudo-relations — are
        dropped from SES; the dedicated CalcTES rules handle them."""
        inner = node(NEST, rel("R"), rel("S"), eq("R.a", "S.a"),
                     aggregates=(Aggregate("G0.cnt", len),))
        top = node(JOIN, inner, rel("T"),
                   FunctionPredicate(fn=lambda row: True,
                                     over=frozenset({"G0", "T"})))
        assert ses_tables(top) == {"T"}

    def test_nestjoin_includes_aggregate_tables(self):
        aggregates = (
            Aggregate("G0.total",
                      fn=lambda rows: sum(r.get("S.b", 0) for r in rows),
                      tables=frozenset({"S"})),
        )
        tree = node(NEST, rel("R"), rel("S"), eq("R.a", "S.a"), aggregates)
        assert ses_tables(tree) == {"R", "S"}


class TestAnalyze:
    def test_leaf_only_tree(self):
        analysis = analyze(rel("R"))
        assert analysis.n_relations == 1
        assert analysis.operators == []

    def test_indices_left_to_right(self):
        tree = node(JOIN, node(JOIN, rel("B"), rel("A"), eq("B.x", "A.x")),
                    rel("C"), eq("A.x", "C.x"))
        analysis = analyze(tree)
        assert analysis.index_of == {"B": 0, "A": 1, "C": 2}

    def test_tes_starts_as_ses(self):
        tree = node(JOIN, node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a")),
                    rel("T"), eq("S.a", "T.a"))
        analysis = analyze(tree)
        top = info_for(analysis, tree)
        # join-join: no conflicts, TES stays SES = {S, T}
        assert top.tes == top.ses == analysis.bitmap({"S", "T"})
        assert top.conflict_tables == 0


class TestConflicts:
    def test_outer_under_join_pins(self):
        """(R leftouter S) join_pST T: conjoining into/through the outer
        join is a conflict (Fig. 9 row 5) — TES of the join absorbs the
        outer join's TES."""
        outer = node(LEFT_OUTER, rel("R"), rel("S"), eq("R.a", "S.a"))
        tree = node(JOIN, outer, rel("T"), eq("S.a", "T.a"))
        analysis = analyze(tree)
        top = info_for(analysis, tree)
        assert top.tes == analysis.bitmap({"R", "S", "T"})
        assert top.conflict_tables == analysis.bitmap({"R", "S"})

    def test_join_under_outer_free(self):
        """(R join S) leftouter T reorders freely: OC(join, outer) is
        false."""
        inner = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        tree = node(LEFT_OUTER, inner, rel("T"), eq("S.a", "T.a"))
        analysis = analyze(tree)
        top = info_for(analysis, tree)
        assert top.tes == analysis.bitmap({"S", "T"})

    def test_join_under_full_outer_conflicts(self):
        inner = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        tree = node(FULL_OUTER, inner, rel("T"), eq("S.a", "T.a"))
        analysis = analyze(tree)
        top = info_for(analysis, tree)
        assert top.tes == analysis.bitmap({"R", "S", "T"})

    def test_anti_chain_accumulates(self):
        """anti below anti conflicts (OC true): TESs chain, which is
        what collapses the Fig. 8a search space to O(n)."""
        tree = node(ANTI, node(ANTI, rel("R"), rel("S"), eq("R.a", "S.a")),
                    rel("T"), eq("R.a", "T.a"))
        analysis = analyze(tree)
        top = info_for(analysis, tree)
        assert top.tes == analysis.bitmap({"R", "S", "T"})

    def test_commuted_orientation_detected(self):
        """Regression for the fuzz-found bug: with the outer join on
        the *right* side of a commutative join, the conflict must still
        be found (commutation closure)."""
        outer = node(LEFT_OUTER, rel("R"), rel("S"), eq("R.a", "S.a"))
        tree = node(JOIN, rel("T"), outer, eq("S.a", "T.a"))
        analysis = analyze(tree)
        top = info_for(analysis, tree)
        assert analysis.bitmap({"R"}) & top.tes  # R pinned

    def test_nestjoin_aggregate_reference_pins(self):
        """An ancestor predicate referencing a published aggregate
        cannot be pushed below the nestjoin."""
        nest = node(NEST, rel("R"), rel("S"), eq("R.a", "S.a"),
                    aggregates=(Aggregate("G0.cnt", len),))
        top = node(JOIN, nest, rel("T"),
                   FunctionPredicate(fn=lambda row: True,
                                     over=frozenset({"G0", "T"})))
        analysis = analyze(top)
        top_info = info_for(analysis, top)
        assert top_info.tes == analysis.bitmap({"R", "S", "T"})

"""The ``canonical_fallbacks`` plan-cache counter.

Uniform-stats cliques defeat the canonical-labeling budget (every node
looks identical, so individualization explodes); such lookups key
through the index-order fallback and must be counted, because their
hit rate is labeling-limited rather than capacity-limited and an
operator reading ``bench throughput`` output should be able to tell.
"""

import pytest

from repro.bench import throughput
from repro.core.hypergraph import Hypergraph
from repro.optimizer import Optimizer, OptimizerConfig
from repro.workloads import generators


def uniform_clique(n: int) -> Hypergraph:
    graph = Hypergraph(n_nodes=n)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_simple_edge(i, j, selectivity=0.5)
    return graph


class TestCounter:
    def test_uniform_clique_counts_every_lookup(self):
        opt = Optimizer(OptimizerConfig(cache="on", algorithm="dphyp"))
        graph = uniform_clique(8)
        cards = [100.0] * 8
        opt.optimize(graph, cardinalities=cards)
        opt.optimize(graph, cardinalities=cards)
        counters = opt.plan_cache.counters()
        assert counters["canonical_fallbacks"] == 2
        assert counters["hits"] == 1  # fallback keys still dedupe repeats

    def test_asymmetric_queries_never_fall_back(self):
        opt = Optimizer(OptimizerConfig(cache="on"))
        for query in (generators.chain(7, seed=1), generators.star(6, seed=2)):
            opt.optimize(query.graph, cardinalities=query.cardinalities)
        assert opt.plan_cache.counters()["canonical_fallbacks"] == 0

    def test_cache_off_does_not_touch_the_counter(self):
        opt = Optimizer(OptimizerConfig(cache="off"))
        graph = uniform_clique(8)
        opt.optimize(graph, cardinalities=[100.0] * 8)
        assert opt.plan_cache.counters()["canonical_fallbacks"] == 0

    def test_counter_survives_reset_semantics(self):
        opt = Optimizer(OptimizerConfig(cache="on", algorithm="dphyp"))
        graph = uniform_clique(8)
        opt.optimize(graph, cardinalities=[100.0] * 8)
        before = opt.plan_cache.counters()["canonical_fallbacks"]
        assert before == 1
        opt.optimize(uniform_clique(8), cardinalities=[100.0] * 8)
        assert opt.plan_cache.counters()["canonical_fallbacks"] == 2


class TestBenchSurface:
    def make_document(self, fallbacks: int) -> dict:
        return {
            "schema_version": 1,
            "python": "3.11",
            "copies": 3,
            "workloads": [{
                "query": "clique-8",
                "workload": "clique-8",
                "cold_qps": 10.0,
                "warm_qps": 100.0,
                "hot_qps": 1000.0,
                "speedup": 100.0,
                "hot_hit_rate": 1.0,
                "cache": {"canonical_fallbacks": fallbacks},
            }],
        }

    def test_summary_reports_nonzero_fallbacks(self):
        text = throughput.render_summary(self.make_document(7))
        assert "canonical_fallbacks=7" in text

    def test_summary_stays_quiet_at_zero(self):
        text = throughput.render_summary(self.make_document(0))
        assert "canonical_fallbacks" not in text

    def test_throughput_run_carries_counter_in_cache_section(self):
        document = throughput.run_throughput(max_n=5, copies=3)
        for entry in document["workloads"]:
            assert "canonical_fallbacks" in entry["cache"]


def test_counter_round_trips_counters_dict():
    from repro.cache import PlanCache

    cache = PlanCache()
    assert cache.counters()["canonical_fallbacks"] == 0
    cache.note_canonical_fallback()
    cache.note_canonical_fallback()
    cache.note_canonical_fallback()
    assert cache.counters()["canonical_fallbacks"] == 3

"""Tests for EXPLAIN rendering and the closed-form counting module."""

import pytest

from repro import optimize
from repro.core import counting
from repro.core.stats import SearchStats
from repro.explain import explain, explain_dot, plan_summary
from repro.workloads import chain, clique, cycle, star


class TestExplain:
    def _plan(self):
        query = chain(4, seed=1)
        result = optimize(query.graph, query.cardinalities)
        return result.plan

    def test_explain_mentions_all_relations(self):
        text = explain(self._plan())
        for i in range(4):
            assert f"scan R{i}" in text

    def test_explain_shows_costs_and_rows(self):
        text = explain(self._plan())
        assert "cost=" in text and "rows=" in text
        assert "├──" in text and "└──" in text

    def test_explain_with_names(self):
        text = explain(self._plan(), names=["a", "b", "c", "d"])
        assert "scan a" in text

    def test_explain_with_predicates(self):
        from repro.algebra import Equals, JOIN, attr, leaf, node
        from repro.algebra import optimize_operator_tree
        from repro.algebra.optree import Relation

        tree = node(JOIN, leaf(Relation("R", 10)), leaf(Relation("S", 10)),
                    Equals(attr("R.a"), attr("S.a")))
        result = optimize_operator_tree(tree)
        assert "R.a = S.a" in explain(result.plan, result.relation_names)

    def test_dot_output_well_formed(self):
        dot = explain_dot(self._plan())
        assert dot.startswith("digraph plan {")
        assert dot.endswith("}")
        assert dot.count("->") == 6  # 3 joins x 2 children

    def test_plan_summary(self):
        summary = plan_summary(self._plan())
        assert summary["joins"] == 3
        assert summary["cost"] > 0
        assert summary["max_intermediate_rows"] >= summary["output_rows"]
        assert 2 <= summary["depth"] <= 3


class TestCountingFormulas:
    """[17]'s closed forms must match the live algorithm exactly."""

    @pytest.mark.parametrize("n", range(2, 9))
    def test_chain(self, n):
        query = chain(n, seed=0)
        result = optimize(query.graph, query.cardinalities)
        assert result.stats.ccp_emitted == counting.chain_ccp(n)
        assert result.stats.table_entries == counting.chain_csg(n)

    @pytest.mark.parametrize("n", range(3, 9))
    def test_cycle(self, n):
        query = cycle(n, seed=0)
        result = optimize(query.graph, query.cardinalities)
        assert result.stats.ccp_emitted == counting.cycle_ccp(n)
        assert result.stats.table_entries == counting.cycle_csg(n)

    @pytest.mark.parametrize("n", range(2, 9))
    def test_star(self, n):
        query = star(n - 1, seed=0)  # n relations total
        result = optimize(query.graph, query.cardinalities)
        assert result.stats.ccp_emitted == counting.star_ccp(n)
        assert result.stats.table_entries == counting.star_csg(n)

    @pytest.mark.parametrize("n", range(2, 8))
    def test_clique(self, n):
        query = clique(n, seed=0)
        result = optimize(query.graph, query.cardinalities)
        assert result.stats.ccp_emitted == counting.clique_ccp(n)
        assert result.stats.table_entries == counting.clique_csg(n)

    @pytest.mark.parametrize("n", range(2, 8))
    def test_dpsub_budget(self, n):
        query = clique(n, seed=0)
        stats = SearchStats()
        result = optimize(query.graph, query.cardinalities,
                          algorithm="dpsub")
        assert result.stats.pairs_considered == counting.dpsub_pair_budget(n)

    def test_dpsize_ordered_pairs(self):
        query = star(5, seed=0)
        hyp = optimize(query.graph, query.cardinalities)
        size = optimize(query.graph, query.cardinalities, algorithm="dpsize")
        assert size.stats.ccp_emitted == counting.dpsize_ordered_pairs(
            hyp.stats.ccp_emitted
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            counting.cycle_ccp(2)
        with pytest.raises(ValueError):
            counting.chain_csg(0)

    def test_registry(self):
        assert set(counting.FORMULAS) == {"chain", "cycle", "star", "clique"}
        csg, ccp = counting.FORMULAS["chain"]
        assert csg(3) == 6 and ccp(3) == 4

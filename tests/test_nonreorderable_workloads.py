"""Tests for the Section 5.8 workload trees."""

import pytest

from repro.algebra.operators import ANTI, JOIN, LEFT_OUTER
from repro.algebra.optree import validate_tree
from repro.algebra.pipeline import optimize_operator_tree
from repro.engine.evaluate import evaluate_plan, evaluate_tree
from repro.engine.table import rows_as_bag
from repro.workloads.nonreorderable import (
    cycle_outerjoin_tree,
    star_antijoin_tree,
)


class TestStarAntijoinTree:
    def test_structure(self):
        tree = star_antijoin_tree(6, 2)
        validate_tree(tree)
        ops = [op.op for op in tree.operators()]
        assert ops.count(ANTI) == 2
        assert ops.count(JOIN) == 4
        # antijoins on top (last operators)
        assert ops[-1] == ANTI and ops[-2] == ANTI

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            star_antijoin_tree(4, 5)

    def test_search_space_shrinks_with_antijoins(self):
        ccps = [
            optimize_operator_tree(
                star_antijoin_tree(8, k, seed=3)
            ).stats.ccp_emitted
            for k in (0, 4, 8)
        ]
        assert ccps[0] > ccps[1] > ccps[2]

    def test_executable_variant_equivalent(self):
        tree = star_antijoin_tree(4, 2, seed=5, with_rows=True)
        expected = rows_as_bag(evaluate_tree(tree))
        result = optimize_operator_tree(tree)
        got = rows_as_bag(
            evaluate_plan(result.plan, result.compiled.analysis.relations)
        )
        assert expected == got


class TestCycleOuterjoinTree:
    def test_structure(self):
        tree = cycle_outerjoin_tree(6, 2)
        validate_tree(tree)
        ops = [op.op for op in tree.operators()]
        assert ops.count(LEFT_OUTER) == 2
        # outer joins at the bottom (first operators)
        assert ops[0] == LEFT_OUTER and ops[1] == LEFT_OUTER

    def test_closing_predicate_present_for_inner_top(self):
        tree = cycle_outerjoin_tree(6, 0)
        top = list(tree.operators())[-1]
        assert "R5" in top.predicate.tables and "R0" in top.predicate.tables

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            cycle_outerjoin_tree(2, 0)
        with pytest.raises(ValueError):
            cycle_outerjoin_tree(6, 6)

    def test_u_shape_of_search_space(self):
        """Fig. 8b: space shrinks first (outer joins pin against inner
        joins), then grows again (outer joins associate freely)."""
        sizes = {
            k: optimize_operator_tree(
                cycle_outerjoin_tree(10, k, seed=3)
            ).stats.ccp_emitted
            for k in (0, 3, 9)
        }
        assert sizes[3] < sizes[0]
        assert sizes[9] > sizes[3]

    def test_executable_variant_equivalent(self):
        tree = cycle_outerjoin_tree(5, 2, seed=5, with_rows=True)
        expected = rows_as_bag(evaluate_tree(tree))
        result = optimize_operator_tree(tree)
        got = rows_as_bag(
            evaluate_plan(result.plan, result.compiled.analysis.relations)
        )
        assert expected == got

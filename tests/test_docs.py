"""The documentation must execute.

Every ```python fence in docs/*.md and README.md is run by
``tools/run_doc_snippets.py`` (CI has a dedicated docs job; this test
keeps the check in the tier-1 suite so drift is caught locally too).
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_docs_exist():
    docs = REPO_ROOT / "docs"
    for name in ("architecture.md", "cache.md", "paper_map.md",
                 "analysis.md", "kernel.md", "store.md"):
        assert (docs / name).is_file(), f"docs/{name} is missing"


def test_architecture_links_analysis():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    assert "analysis.md" in text


def test_doc_snippets_execute():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "run_doc_snippets.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"doc snippets failed:\n{proc.stdout}\n{proc.stderr}"
    )


def test_readme_points_at_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    for target in ("docs/architecture.md", "docs/cache.md",
                   "docs/paper_map.md"):
        assert target in readme, f"README should link {target}"

"""Seeded violations for the ``cache-key-completeness`` rule.

This file is *parsed* by the analysis suite in tests, never imported;
every violation here must produce a finding (tests pin the lines).
"""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class LeakyConfig:
    """``threshold`` reaches the plan but not the key: the stale-plan bug."""

    algorithm: str = "auto"
    threshold: int = 14          # VIOLATION: not keyed, not excluded
    cache_size: int = 512
    retired_knob_missing: ClassVar[frozenset] = frozenset()

    CACHE_KEY_EXCLUDED: ClassVar[frozenset] = frozenset({
        "cache_size",
        "retired_knob",          # VIOLATION: names no field (stale)
    })

    def cache_key(self) -> tuple:
        return (self.algorithm,)


class CostModel:
    """Stand-in base so the hierarchy rule applies to this file."""

    def cache_key(self) -> tuple:
        return (type(self).__qualname__,)


class ParamModel(CostModel):
    """Parameterized model whose key ignores one parameter."""

    def __init__(self, build_factor: float, probe_factor: float) -> None:
        self.build_factor = build_factor
        self.probe_factor = probe_factor    # VIOLATION: not in cache_key

    def cache_key(self) -> tuple:
        return (type(self).__qualname__, self.build_factor)


class ForgetfulModel(CostModel):
    """Parameterized model with no cache_key override at all."""

    def __init__(self, weight: float) -> None:   # VIOLATION (class line)
        self.weight = weight


class StatelessModel(CostModel):
    """No parameters: the inherited per-class key is fine (no finding)."""

    def join_cost(self) -> float:
        return 0.0

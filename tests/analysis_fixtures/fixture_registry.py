"""Seeded violations for the ``registry-capability`` rule.

Local stand-ins for ``register_algorithm``/``AlgorithmInfo`` so the
checker's literal-call pattern applies; parsed by tests, never
imported.
"""

import random


def register_algorithm(info, replace=False):
    return info


class AlgorithmInfo:
    def __init__(self, **kwargs):
        self.__dict__.update(kwargs)


def solve_two_args(graph, builder):
    return None


def solve_fine(graph, builder, stats=None):
    return None


def solve_no_guard(graph, builder, stats=None):
    return None


register_algorithm(AlgorithmInfo(
    name="bad-arity",
    solver=solve_two_args,        # VIOLATION: not (graph, builder, stats)
    cacheable=False,
))
register_algorithm(AlgorithmInfo(
    name="unguarded-simple-only",
    solver=solve_no_guard,        # VIOLATION: claims simple-graphs-only
    supports_hypergraphs=False,   # but nothing consults is_simple
    cacheable=False,
))
register_algorithm(AlgorithmInfo(
    name="ghost",
    solver=solve_imported_nowhere,  # VIOLATION: unresolvable  # noqa: F821
    cacheable=False,
))
register_algorithm(AlgorithmInfo(
    name="randomized",
    solver=solve_fine,            # VIOLATION (warning): cacheable default
))                                # in a module importing random
register_algorithm(AlgorithmInfo(
    name="bad-arity",             # VIOLATION: duplicate registration
    solver=solve_fine,
    cacheable=False,
))

"""Seeded violations for ``no-pickle`` / ``no-builtin-hash``.

Lives under an ``analysis_fixtures/cache/`` directory on purpose: the
checker scopes itself to cache persistence paths by path component.
Parsed by tests, never imported.
"""

import json
import pickle                      # VIOLATION: no-pickle
from marshal import dumps          # VIOLATION: no-pickle (marshal)


def save_entry(key: tuple, recipe: tuple) -> str:
    token = hash(key)              # VIOLATION: no-builtin-hash
    return json.dumps({"token": token, "recipe": repr(recipe)})


def save_blob(recipe: tuple) -> bytes:
    return pickle.dumps(recipe) + dumps(recipe)


def sanctioned_fallback(key: tuple) -> int:
    return hash(key)               # repro: ignore[no-builtin-hash]

"""Seeded violations for the ``lock-discipline`` rule.

A class owning ``self._lock`` mutates guarded state outside the lock
in several shapes (plain write, augmented write, container mutator,
subscript write).  Parsed by tests, never imported.
"""

import threading


class RacyCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    def store(self, key: object, value: object) -> None:
        with self._lock:
            self._entries[key] = value          # guarded: no finding
        self.hits += 1                          # VIOLATION: augmented write

    def drop(self, key: object) -> None:
        self._entries.pop(key, None)            # VIOLATION: mutator call

    def reset(self) -> None:
        self.misses = 0                         # VIOLATION: plain write
        with self._lock:
            self.hits = 0                       # guarded: no finding

    def alias_write(self, key: object) -> None:
        self._entries[key] = None               # VIOLATION: subscript write

    def read_only(self) -> int:
        return self.hits + len(self._entries)   # reads: no finding

    def audited_fast_path(self) -> None:
        self.hits += 1     # repro: ignore[lock-discipline]

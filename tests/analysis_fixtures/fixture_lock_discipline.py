"""Seeded violations for the ``lock-discipline`` rule.

A class owning ``self._lock`` mutates guarded state outside the lock
in several shapes (plain write, augmented write, container mutator,
subscript write) — plus an asyncio counterpart whose ``async def``
handlers write state outside ``async with self._lock``.  Parsed by
tests, never imported.
"""

import asyncio
import threading


class RacyCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    def store(self, key: object, value: object) -> None:
        with self._lock:
            self._entries[key] = value          # guarded: no finding
        self.hits += 1                          # VIOLATION: augmented write

    def drop(self, key: object) -> None:
        self._entries.pop(key, None)            # VIOLATION: mutator call

    def reset(self) -> None:
        self.misses = 0                         # VIOLATION: plain write
        with self._lock:
            self.hits = 0                       # guarded: no finding

    def alias_write(self, key: object) -> None:
        self._entries[key] = None               # VIOLATION: subscript write

    def read_only(self) -> int:
        return self.hits + len(self._entries)   # reads: no finding

    def audited_fast_path(self) -> None:
        self.hits += 1     # repro: ignore[lock-discipline]


class RacyServer:
    """Async flavor: coroutine handlers interleave at await points."""

    def __init__(self) -> None:
        self._lock = asyncio.Lock()
        self.in_flight = 0
        self._queue: list = []

    async def admit(self) -> None:
        async with self._lock:
            self.in_flight += 1                 # guarded: no finding
        self.in_flight -= 1                     # VIOLATION: after release

    async def enqueue(self, item: object) -> None:
        self._queue.append(item)                # VIOLATION: mutator call

    async def drain(self) -> None:
        async with self._lock:
            self._queue.clear()                 # guarded: no finding

"""Plan-cache persistence: round-trips, versioning, corruption.

The contract under test (docs/cache.md):

* save -> load reproduces the serving behaviour exactly — the same
  batch produces the identical hit/miss event sequence against the
  loaded cache as against the live one;
* a stale ``KEY_VERSION`` or document format version rejects the whole
  file; entries stale under the statistics epoch at save time are
  skipped on load;
* a corrupt or foreign file degrades to a cold cache with a
  ``CachePersistenceWarning`` — never an exception;
* ``OptimizerConfig(cache_path=...)`` auto-loads on first use and
  autosaves after ``optimize_many`` batches, so a restarted process
  serves its first repeated query as a hit.
"""

import json
import os
import warnings

import pytest

from repro.cache import (
    CachePersistenceWarning,
    PlanCache,
    dump_document,
    load,
    restore_document,
    save,
)
from repro.cache import persist
from repro.optimizer import Optimizer, OptimizerConfig
from repro.workloads import generators
from repro.workloads.repeated import drifting_workload, repeated_workload


def make_cache(entries=3, capacity=16) -> PlanCache:
    cache = PlanCache(capacity)
    for i in range(entries):
        cache.store(
            (1, f"digest-{i}", ("auto", "hyperedges", ("m", "q"), 14)),
            (i, (0, 1)),
            structure=f"bucket-{i % 2}",
            cost=float(i),
        )
    return cache


def events_of(results):
    return [r.stats.extra["plan_cache"]["event"] for r in results]


class TestRoundTrip:
    def test_save_load_identical_entries(self, tmp_path):
        cache = make_cache(entries=5)
        path = str(tmp_path / "plans.json")
        assert save(cache, path) == 5
        loaded = load(path)
        assert len(loaded) == 5
        for key, entry in cache.snapshot_entries():
            restored, status = loaded.probe(key)
            assert status == "hit"
            assert restored.recipe == entry.recipe
            assert restored.structure == entry.structure
            assert restored.cost == entry.cost

    def test_loaded_cache_serves_same_events_as_live(self, tmp_path):
        """save -> load -> hit pattern identical to the live cache."""
        batch = repeated_workload(generators.chain(6, seed=2), 8, seed=4)
        live = Optimizer(OptimizerConfig(cache="on"))
        live.optimize_many(batch)                    # populate
        live_events = events_of(live.optimize_many(batch))
        path = str(tmp_path / "plans.json")
        save(live.plan_cache, path)

        restarted = Optimizer(
            OptimizerConfig(cache="on"), plan_cache=load(path)
        )
        restarted_events = events_of(restarted.optimize_many(batch))
        assert restarted_events == live_events
        assert all(event == "hit" for event in restarted_events)
        # per-pass hit rate identical (the live counters additionally
        # remember the populate pass; the events are the comparison)
        live_rate = live_events.count("hit") / len(live_events)
        restarted_rate = (
            restarted_events.count("hit") / len(restarted_events)
        )
        assert restarted_rate == live_rate == 1.0

    def test_loaded_plans_cost_identical(self, tmp_path):
        batch = repeated_workload(generators.star(6, seed=7), 6, seed=1)
        first = Optimizer(OptimizerConfig(cache="on"))
        originals = first.optimize_many(batch)
        path = str(tmp_path / "plans.json")
        save(first.plan_cache, path)
        second = Optimizer(OptimizerConfig(cache="on"), plan_cache=load(path))
        replayed = second.optimize_many(batch)
        for a, b in zip(originals, replayed):
            assert a.cost == b.cost
            assert a.explain() == b.explain()

    def test_document_round_trip_in_memory(self):
        cache = make_cache(entries=4)
        clone = restore_document(dump_document(cache))
        assert len(clone) == 4
        assert clone.counters()["restored"] == 4

    def test_lru_order_and_capacity_preserved(self, tmp_path):
        cache = make_cache(entries=6, capacity=16)
        path = str(tmp_path / "plans.json")
        save(cache, path)
        small = load(path, capacity=2)
        # MRU tail survives: the two *most recently used* entries
        assert len(small) == 2
        entry, status = small.probe(
            (1, "digest-5", ("auto", "hyperedges", ("m", "q"), 14))
        )
        assert status == "hit" and entry.cost == 5.0
        _entry, status = small.probe(
            (1, "digest-0", ("auto", "hyperedges", ("m", "q"), 14))
        )
        assert status == "miss"

    def test_save_is_atomic_no_leftover_temp(self, tmp_path):
        path = str(tmp_path / "plans.json")
        save(make_cache(), path)
        save(make_cache(entries=1), path)  # overwrite in place
        assert len(load(path)) == 1
        leftovers = [
            name for name in os.listdir(tmp_path) if name != "plans.json"
        ]
        assert leftovers == []


class TestStaleness:
    def test_stale_key_version_rejected(self, tmp_path):
        path = str(tmp_path / "plans.json")
        save(make_cache(), path)
        with open(path) as handle:
            document = json.load(handle)
        document["key_version"] = persist.KEY_VERSION + 1
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.warns(CachePersistenceWarning, match="key_version"):
            assert len(load(path)) == 0

    def test_stale_format_version_rejected(self, tmp_path):
        path = str(tmp_path / "plans.json")
        save(make_cache(), path)
        with open(path) as handle:
            document = json.load(handle)
        document["format_version"] = persist.FORMAT_VERSION + 1
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.warns(CachePersistenceWarning, match="format_version"):
            assert len(load(path)) == 0

    def test_entries_stale_at_save_time_skipped(self, tmp_path):
        cache = make_cache(entries=3)
        cache.bump_epoch()  # statistics refreshed: all entries stale
        path = str(tmp_path / "plans.json")
        save(cache, path)
        with pytest.warns(CachePersistenceWarning, match="skipped 3 stale"):
            assert len(load(path)) == 0

    def test_mixed_fresh_and_stale_entries(self, tmp_path):
        cache = make_cache(entries=2)
        cache.bump_epoch()
        cache.store((1, "fresh", ("auto",)), (0, 1), cost=1.0)
        path = str(tmp_path / "plans.json")
        save(cache, path)
        with pytest.warns(CachePersistenceWarning):
            loaded = load(path)
        assert len(loaded) == 1
        _entry, status = loaded.probe((1, "fresh", ("auto",)))
        assert status == "hit"

    def test_loaded_entries_fresh_at_target_epoch(self, tmp_path):
        """Survivors enter the new cache fresh, not pre-staled."""
        cache = make_cache(entries=1)
        path = str(tmp_path / "plans.json")
        save(cache, path)
        loaded = load(path)
        key = cache.snapshot_entries()[0][0]
        _entry, status = loaded.probe(key)
        assert status == "hit"
        loaded.bump_epoch()
        _entry, status = loaded.probe(key)
        assert status == "stale"

    def test_entry_with_wrong_embedded_key_version_skipped(self, tmp_path):
        cache = PlanCache(4)
        cache.store((persist.KEY_VERSION + 1, "x", ()), 0)
        path = str(tmp_path / "plans.json")
        save(cache, path)
        with pytest.warns(CachePersistenceWarning):
            assert len(load(path)) == 0


class TestCorruption:
    """Anything wrong with the file means a warning and a cold cache."""

    @pytest.mark.parametrize("content", [
        "",                                   # empty file
        "{not json at all",                   # truncated JSON
        '"just a string"',                    # wrong top-level type
        '{"format": "something-else"}',       # foreign file
        '{"format": "repro-plan-cache"}',     # missing versions
        json.dumps({                          # entries is not a list
            "format": "repro-plan-cache", "format_version": 1,
            "key_version": persist.KEY_VERSION, "epoch": 0,
            "capacity": 4, "entries": 17,
        }),
        json.dumps({                          # capacity is garbage
            "format": "repro-plan-cache", "format_version": 1,
            "key_version": persist.KEY_VERSION, "epoch": 0,
            "capacity": {"x": 1}, "entries": [],
        }),
    ])
    def test_corrupt_file_degrades_to_cold_cache(self, tmp_path, content):
        path = str(tmp_path / "plans.json")
        with open(path, "w") as handle:
            handle.write(content)
        with pytest.warns(CachePersistenceWarning):
            cache = load(path)
        assert len(cache) == 0
        cache.store((1, "x", ()), 0)  # and it is a working cache
        assert len(cache) == 1

    def test_unparsable_entry_skipped_not_fatal(self, tmp_path):
        cache = make_cache(entries=2)
        path = str(tmp_path / "plans.json")
        save(cache, path)
        with open(path) as handle:
            document = json.load(handle)
        document["entries"][0]["key"] = "__import__('os')"  # not a literal
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.warns(CachePersistenceWarning, match="skipped 1"):
            assert len(load(path)) == 1

    def test_pathologically_nested_json_degrades_not_raises(
        self, tmp_path
    ):
        """RecursionError from the JSON parser is a corruption class:
        cold start with a warning, never a crash at server boot."""
        path = str(tmp_path / "plans.json")
        depth = 100_000
        with open(path, "w") as handle:
            handle.write("[" * depth + "]" * depth)
        with pytest.warns(CachePersistenceWarning):
            cache = load(path)
        assert len(cache) == 0

    def test_missing_file_is_silent_cold_start(self, tmp_path):
        path = str(tmp_path / "never-written.json")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache = load(path)
        assert len(cache) == 0

    def test_missing_file_warns_when_not_ok(self, tmp_path):
        with pytest.warns(CachePersistenceWarning, match="does not exist"):
            load(str(tmp_path / "nope.json"), missing_ok=False)


class TestProcessScopedKeys:
    """Keys built from process-local identity must die with the process.

    Instance-keyed cost models and non-name-resolvable solvers get
    per-process tokens; their counters restart in a new process, so a
    persisted entry could otherwise be served to a *different* model
    or solver that happened to draw the same token after a restart.
    """

    def test_instance_keyed_cost_model_entries_not_persisted(
        self, tmp_path
    ):
        from repro.cost.models import CostModel

        class StatefulModel(CostModel):
            def __init__(self, alpha):
                self.alpha = alpha

            def join_cost(self, operator, left, right, out_cardinality):
                return left.cost + right.cost + self.alpha * out_cardinality

        opt = Optimizer(
            OptimizerConfig(cache="on", cost_model=StatefulModel(2.0))
        )
        batch = repeated_workload(generators.chain(5, seed=2), 4, seed=6)
        results = opt.optimize_many(batch)
        # in-memory (and forked-worker) caching still works...
        assert events_of(results) == ["miss"] + ["hit"] * 3
        # ...but nothing reaches the disk
        path = str(tmp_path / "plans.json")
        assert save(opt.plan_cache, path) == 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(load(path)) == 0

    def test_non_resolvable_solver_entries_not_persisted(self, tmp_path):
        from repro.registry import (
            AlgorithmInfo,
            register_algorithm,
            unregister_algorithm,
        )

        def make_solver():
            def left_deep(graph, builder, stats):  # a closure: no
                plan = builder.leaf(0)             # durable identity
                for node in range(1, graph.n_nodes):
                    right = builder.leaf(node)
                    edges = graph.connecting_edges(plan.nodes, right.nodes)
                    plan = min(
                        builder.join_unordered(plan, right, edges),
                        key=lambda p: p.cost,
                    )
                return plan
            return left_deep

        try:
            register_algorithm(AlgorithmInfo(
                name="closure-solver", solver=make_solver(), exact=False,
            ))
            opt = Optimizer(
                OptimizerConfig(cache="on", algorithm="closure-solver")
            )
            batch = repeated_workload(generators.chain(5, seed=3), 3, seed=1)
            results = opt.optimize_many(batch)
            assert events_of(results) == ["miss", "hit", "hit"]
            assert save(opt.plan_cache, str(tmp_path / "plans.json")) == 0
        finally:
            unregister_algorithm("closure-solver")

    def test_redefined_solver_never_served_predecessor_plans(self):
        """A function redefined at the same (module, qualname) and
        re-registered must not inherit its predecessor's entries."""
        import sys
        import types

        from repro.core.identity import is_process_scoped
        from repro.registry import (
            AlgorithmInfo,
            register_algorithm,
            registration_fingerprint,
            unregister_algorithm,
        )

        module = types.ModuleType("fake_solver_module")
        sys.modules["fake_solver_module"] = module

        def make_solver():
            def solver(graph, builder, stats):
                plan = builder.leaf(0)
                for node in range(1, graph.n_nodes):
                    right = builder.leaf(node)
                    edges = graph.connecting_edges(plan.nodes, right.nodes)
                    plan = min(
                        builder.join_unordered(plan, right, edges),
                        key=lambda p: p.cost,
                    )
                return plan
            solver.__module__ = "fake_solver_module"
            solver.__qualname__ = "solver"
            return solver

        try:
            first_version = make_solver()
            module.solver = first_version
            register_algorithm(AlgorithmInfo(
                name="redefined", solver=first_version, exact=False,
            ))
            opt = Optimizer(
                OptimizerConfig(cache="on", algorithm="redefined")
            )
            query = generators.chain(4, seed=1)
            opt.optimize(query)

            second_version = make_solver()  # "redefined in the REPL"
            module.solver = second_version
            register_algorithm(AlgorithmInfo(
                name="redefined", solver=second_version, exact=False,
            ), replace=True)
            result = opt.optimize(query)
            # the path is ambiguous now: keys are process-scoped and
            # the predecessor's entry is unreachable
            assert result.stats.extra["plan_cache"]["event"] == "miss"
            assert any(
                isinstance(part, str) and is_process_scoped(part)
                for part in registration_fingerprint("redefined")
            )
        finally:
            unregister_algorithm("redefined")
            del sys.modules["fake_solver_module"]

    def test_in_memory_snapshot_keeps_process_scoped_entries(self):
        """Worker warm-up snapshots stay within one process lifetime,
        so process-scoped entries must survive the round trip."""
        from repro.cost.models import CostModel

        class StatefulModel(CostModel):
            def __init__(self, alpha):
                self.alpha = alpha

            def join_cost(self, operator, left, right, out_cardinality):
                return left.cost + right.cost + self.alpha * out_cardinality

        opt = Optimizer(
            OptimizerConfig(cache="on", cost_model=StatefulModel(3.0))
        )
        opt.optimize_many(repeated_workload(generators.chain(5, seed=2), 3))
        assert len(opt.plan_cache) == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clone = restore_document(dump_document(opt.plan_cache))
        assert len(clone) == 1  # kept in memory, excluded on disk

    def test_builtin_solver_fingerprint_is_restart_stable(self):
        from repro.core.identity import is_process_scoped
        from repro.registry import registration_fingerprint

        fingerprint = registration_fingerprint("dphyp")
        assert fingerprint[:3] == (
            "dphyp", "repro.core.dphyp", "solve_dphyp"
        )
        # the fourth element pins the implementation: a hex digest of
        # the solver's bytecode, not a process-scoped token
        assert len(fingerprint) == 4
        assert isinstance(fingerprint[3], str) and len(fingerprint[3]) == 16
        assert not any(
            isinstance(part, str) and is_process_scoped(part)
            for part in fingerprint
        )

    def test_fingerprint_tracks_solver_code_changes(self):
        """An implementation edited between lifetimes keeps its path
        but not its bytecode — the code hash must tell them apart."""
        from repro.registry import _code_fingerprint

        def version_one(x):
            return x + 1

        def version_one_copy(x):
            return x + 1

        def version_two(x):
            return x + 2

        assert _code_fingerprint(version_one) == _code_fingerprint(
            version_one_copy
        )
        assert _code_fingerprint(version_one) != _code_fingerprint(
            version_two
        )
        assert _code_fingerprint(print) is None  # no __code__: unpinnable

    def test_replaced_then_restored_builtin_persists_again(self, tmp_path):
        """Restoring the original module-level solver restores the
        stable fingerprint — persistence keeps working afterwards."""
        from repro.registry import get_algorithm, register_algorithm

        original = get_algorithm("greedy")
        marker = lambda *args: None  # noqa: E731
        from repro.registry import AlgorithmInfo

        register_algorithm(
            AlgorithmInfo(name="greedy", solver=marker, exact=False),
            replace=True,
        )
        try:
            from repro.core.identity import is_process_scoped
            from repro.registry import registration_fingerprint

            assert any(
                isinstance(part, str) and is_process_scoped(part)
                for part in registration_fingerprint("greedy")
            )
        finally:
            register_algorithm(original, replace=True)
        from repro.registry import registration_fingerprint

        restored = registration_fingerprint("greedy")
        assert restored[:3] == (
            "greedy", "repro.core.greedy", "solve_greedy"
        )
        assert not any(
            isinstance(part, str) and is_process_scoped(part)
            for part in restored
        )


class TestFacadeIntegration:
    def test_warm_restart_first_query_is_hit(self, tmp_path):
        path = str(tmp_path / "plans.json")
        batch = repeated_workload(generators.cycle(6, seed=5), 6, seed=8)
        config = OptimizerConfig(cache="on", cache_path=path)

        cold = Optimizer(config)
        cold_results = cold.optimize_many(batch)
        assert events_of(cold_results)[0] == "miss"
        assert os.path.exists(path)  # autosaved at batch end

        restarted = Optimizer(config)  # fresh process, same config
        warm_results = restarted.optimize_many(batch)
        assert all(event == "hit" for event in events_of(warm_results))
        for a, b in zip(cold_results, warm_results):
            assert a.cost == b.cost

    def test_autosave_skips_unchanged_cache(self, tmp_path):
        """A fully-warm batch does pure lookups — no file rewrite."""
        path = str(tmp_path / "plans.json")
        config = OptimizerConfig(cache="on", cache_path=path)
        batch = repeated_workload(generators.chain(5, seed=9), 4, seed=3)
        optimizer = Optimizer(config)
        optimizer.optimize_many(batch)            # populates + saves
        stamp = os.stat(path).st_mtime_ns
        optimizer.optimize_many(batch)            # all hits: clean
        assert os.stat(path).st_mtime_ns == stamp
        # a genuinely new shape dirties the cache and re-saves
        optimizer.optimize_many(
            repeated_workload(generators.star(4, seed=2), 2, seed=1)
        )
        assert os.stat(path).st_mtime_ns != stamp

    def test_first_warm_batch_after_restart_does_not_rewrite(
        self, tmp_path
    ):
        """Auto-load counts as 'saved': a restarted server's first
        all-hits batch must not rewrite an identical file."""
        path = str(tmp_path / "plans.json")
        config = OptimizerConfig(cache="on", cache_path=path)
        batch = repeated_workload(generators.chain(5, seed=9), 4, seed=3)
        Optimizer(config).optimize_many(batch)      # populate + save
        stamp = os.stat(path).st_mtime_ns

        restarted = Optimizer(config)               # auto-loads
        results = restarted.optimize_many(batch)    # pure hits
        assert all(e == "hit" for e in events_of(results))
        assert os.stat(path).st_mtime_ns == stamp

    def test_autosave_off_leaves_no_file(self, tmp_path):
        path = str(tmp_path / "plans.json")
        config = OptimizerConfig(
            cache="on", cache_path=path, cache_autosave=False
        )
        optimizer = Optimizer(config)
        optimizer.optimize_many(
            repeated_workload(generators.chain(4, seed=1), 3)
        )
        assert not os.path.exists(path)
        optimizer.save_cache()  # explicit save still works
        assert os.path.exists(path)

    def test_save_cache_requires_a_path(self):
        with pytest.raises(ValueError, match="cache_path"):
            Optimizer(OptimizerConfig(cache="on")).save_cache()

    def test_save_cache_explicit_path_overrides(self, tmp_path):
        optimizer = Optimizer(OptimizerConfig(cache="on"))
        optimizer.optimize_many(
            repeated_workload(generators.chain(4, seed=1), 3)
        )
        target = str(tmp_path / "explicit.json")
        written = optimizer.save_cache(target)
        assert written == len(optimizer.plan_cache) > 0

    def test_corrupt_cache_path_still_serves(self, tmp_path):
        path = str(tmp_path / "plans.json")
        with open(path, "w") as handle:
            handle.write("garbage{{{")
        config = OptimizerConfig(cache="on", cache_path=path)
        with pytest.warns(CachePersistenceWarning):
            optimizer = Optimizer(config)
            results = optimizer.optimize_many(
                repeated_workload(generators.chain(5, seed=3), 4)
            )
        assert all(r.plan is not None for r in results)

    def test_drifted_stats_never_served_stale_plans(self, tmp_path):
        """Statistics-drifted copies miss the persisted entries."""
        path = str(tmp_path / "plans.json")
        base = generators.chain(6, seed=11)
        config = OptimizerConfig(cache="on", cache_path=path)
        Optimizer(config).optimize_many(repeated_workload(base, 4))

        restarted = Optimizer(config)
        drifted_batch = drifting_workload(base, 4, seed=77, distinct_stats=4)
        results = restarted.optimize_many(drifted_batch)
        # every drifted copy has a different statistics signature, so
        # nothing may be served from the warm (or fresh) entries
        assert "hit" not in events_of(results)[1:]

    def test_cache_size_bounds_loaded_cache(self, tmp_path):
        path = str(tmp_path / "plans.json")
        save(make_cache(entries=8, capacity=16), path)
        optimizer = Optimizer(
            OptimizerConfig(cache="on", cache_path=path, cache_size=3)
        )
        assert len(optimizer.plan_cache) == 3
        assert optimizer.plan_cache.capacity == 3

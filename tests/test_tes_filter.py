"""Tests for the generate-and-test TES comparator (Fig. 8a)."""

import pytest

from repro.algebra.pipeline import optimize_operator_tree
from repro.workloads.nonreorderable import star_antijoin_tree


class TestTesFilterMode:
    def test_same_optimum_as_hyperedges(self):
        tree = star_antijoin_tree(6, 3, seed=1)
        eager = optimize_operator_tree(tree, mode="hyperedges")
        lazy = optimize_operator_tree(tree, mode="tes-filter")
        assert lazy.cost == pytest.approx(eager.cost)

    def test_explores_more_with_restrictions(self):
        """With antijoins present, the SES-based edges explore a larger
        space and rejections happen late — the Fig. 8a effect."""
        tree = star_antijoin_tree(8, 6, seed=1)
        eager = optimize_operator_tree(tree, mode="hyperedges")
        lazy = optimize_operator_tree(tree, mode="tes-filter")
        assert lazy.stats.ccp_emitted > eager.stats.ccp_emitted
        assert lazy.stats.extra["tes_rejections"] > 0

    def test_no_rejections_without_restrictions(self):
        tree = star_antijoin_tree(6, 0, seed=1)
        lazy = optimize_operator_tree(tree, mode="tes-filter")
        assert lazy.stats.extra["tes_rejections"] == 0

    def test_search_space_collapse_with_antijoins(self):
        """Section 5.7's O(n^2) -> O(n) claim: ccps with all antijoins
        are a tiny fraction of the pure-join star's."""
        n = 8
        all_joins = optimize_operator_tree(star_antijoin_tree(n, 0, seed=1))
        all_antis = optimize_operator_tree(star_antijoin_tree(n, n, seed=1))
        assert all_antis.stats.ccp_emitted <= n
        assert all_joins.stats.ccp_emitted == n * 2 ** (n - 1)

"""Tests for the operator algebra properties (Section 5.1/5.2)."""

import pytest

from repro.algebra.operators import (
    ALL_OPERATORS,
    ANTI,
    DEPENDENT_JOIN,
    DEPENDENT_SEMI,
    FULL_OUTER,
    JOIN,
    LEFT_OUTER,
    LOP,
    NEST,
    SEMI,
    Operator,
    operator_conflict,
)


class TestOperatorProperties:
    def test_commutativity(self):
        """Only the join and the full outer join commute (Sec. 5.4)."""
        assert JOIN.commutative
        assert FULL_OUTER.commutative
        for op in (LEFT_OUTER, SEMI, ANTI, NEST, DEPENDENT_JOIN):
            assert not op.commutative

    def test_observation1_linearity(self):
        """Observation 1: LOP operators are left-linear; join is both;
        full outer is neither."""
        for op in LOP:
            assert op.left_linear
        assert JOIN.left_linear and JOIN.right_linear
        assert not FULL_OUTER.left_linear
        assert not FULL_OUTER.right_linear
        assert not LEFT_OUTER.right_linear

    def test_lop_contents(self):
        """LOP per Section 5.1: the left variants plus all dependents."""
        assert LEFT_OUTER in LOP and SEMI in LOP and ANTI in LOP and NEST in LOP
        assert DEPENDENT_JOIN in LOP and DEPENDENT_SEMI in LOP
        assert JOIN not in LOP and FULL_OUTER not in LOP

    def test_right_side_visibility(self):
        assert JOIN.right_side_visible
        assert LEFT_OUTER.right_side_visible
        assert FULL_OUTER.right_side_visible
        for op in (SEMI, ANTI, NEST):
            assert not op.right_side_visible

    def test_dependent_round_trip(self):
        assert SEMI.to_dependent() == DEPENDENT_SEMI
        assert DEPENDENT_SEMI.to_regular() == SEMI
        assert SEMI.to_dependent().dependent
        assert str(DEPENDENT_SEMI) == "dsemi"

    def test_full_outer_has_no_dependent_variant(self):
        with pytest.raises(ValueError):
            FULL_OUTER.to_dependent()
        with pytest.raises(ValueError):
            Operator("full_outer", dependent=True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Operator("cross_apply_magic")

    def test_kind_tags(self):
        assert JOIN.kind == "join"
        assert DEPENDENT_JOIN.kind == "djoin"
        assert JOIN.is_inner_join
        assert not DEPENDENT_JOIN.is_inner_join


class TestOperatorConflict:
    """OC from Section 5.5 / Appendix A.3, row by row."""

    def test_join_conflicts_only_with_full_outer_above(self):
        assert operator_conflict(JOIN, FULL_OUTER)
        for other in (JOIN, LEFT_OUTER, SEMI, ANTI, NEST):
            assert not operator_conflict(JOIN, other)

    def test_outer_outer_is_free(self):
        """(R leftouter S) leftouter T reorders if predicates strong
        (GOJ 4.46)."""
        assert not operator_conflict(LEFT_OUTER, LEFT_OUTER)

    def test_full_outer_free_under_outer_family(self):
        assert not operator_conflict(FULL_OUTER, LEFT_OUTER)
        assert not operator_conflict(FULL_OUTER, FULL_OUTER)
        assert operator_conflict(FULL_OUTER, JOIN)
        assert operator_conflict(FULL_OUTER, SEMI)

    def test_non_join_generally_conflicts(self):
        assert operator_conflict(SEMI, JOIN)
        assert operator_conflict(ANTI, ANTI)
        assert operator_conflict(LEFT_OUTER, JOIN)
        assert operator_conflict(NEST, SEMI)
        assert operator_conflict(LEFT_OUTER, FULL_OUTER)

    def test_dependent_stands_for_base(self):
        """'each operator also stands for its dependent counterpart'"""
        for op1 in ALL_OPERATORS:
            for op2 in ALL_OPERATORS:
                assert operator_conflict(op1, op2) == operator_conflict(
                    op1.to_regular(), op2.to_regular()
                )

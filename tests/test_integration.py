"""End-to-end integration tests: the paper's worked examples and a
realistic multi-stage scenario."""

import pytest

from repro import Hypergraph, explain, optimize
from repro.core import bitset
from repro.core.dphyp import DPhyp
from repro.core.plans import JoinPlanBuilder
from repro.core.stats import SearchStats


class TestFig3TraceProperties:
    """The Fig. 3 trace implies structural properties of the
    enumeration order; we assert them on the actual Fig. 2 run."""

    def _emissions(self, fig2_graph, fig2_cardinalities):
        solver = DPhyp(
            fig2_graph, JoinPlanBuilder(fig2_graph, fig2_cardinalities)
        )
        emitted = []
        original = solver.emit_csg_cmp

        def recording(s1, s2, edges=None):
            emitted.append((s1, s2))
            original(s1, s2, edges)

        solver.emit_csg_cmp = recording
        plan = solver.run()
        return emitted, plan

    def test_min_ordering_invariant(self, fig2_graph, fig2_cardinalities):
        """Every emitted pair satisfies min(S1) < min(S2) — the
        duplicate-avoidance rule of Sec. 2.2."""
        emitted, _ = self._emissions(fig2_graph, fig2_cardinalities)
        for s1, s2 in emitted:
            assert bitset.min_node(s1) < bitset.min_node(s2)

    def test_subsets_before_supersets(self, fig2_graph, fig2_cardinalities):
        """DP-validity: before (S1, S2), every (S1', S2') with
        S1' ⊂ S1, S2' ⊆ S2 (or symmetric) was emitted."""
        emitted, _ = self._emissions(fig2_graph, fig2_cardinalities)
        for i, (s1, s2) in enumerate(emitted):
            union = s1 | s2
            for j in range(i):
                e1, e2 = emitted[j]
                assert (e1 | e2) != union or (e1, e2) != (s1, s2)
            # both sides must already have table entries, i.e. every
            # multi-relation side appeared as a union earlier
            for side in (s1, s2):
                if bitset.count(side) > 1:
                    assert any(
                        (e1 | e2) == side for e1, e2 in emitted[:i]
                    ), f"side {side:b} used before being built"

    def test_bridge_pair_emitted_once(self, fig2_graph, fig2_cardinalities):
        """The hyperedge pair ({R1,R2,R3}, {R4,R5,R6}) — steps 20–23 of
        Fig. 3 — appears exactly once."""
        emitted, _ = self._emissions(fig2_graph, fig2_cardinalities)
        bridge = (bitset.set_of(0, 1, 2), bitset.set_of(3, 4, 5))
        assert emitted.count(bridge) == 1

    def test_nine_emissions_total(self, fig2_graph, fig2_cardinalities):
        emitted, plan = self._emissions(fig2_graph, fig2_cardinalities)
        assert len(emitted) == 9
        assert plan is not None


class TestSnowflakeScenario:
    """A realistic snowflake schema: fact -> dimensions -> sub-dims,
    exercised through the whole public API."""

    def _build(self):
        names = [
            "sales", "date_dim", "customer", "product", "store",
            "city", "brand",
        ]
        cards = [1e7, 2000.0, 50_000.0, 10_000.0, 200.0, 500.0, 100.0]
        graph = Hypergraph(n_nodes=7, node_names=names)
        graph.add_simple_edge(0, 1, selectivity=1 / 2000)
        graph.add_simple_edge(0, 2, selectivity=1 / 50_000)
        graph.add_simple_edge(0, 3, selectivity=1 / 10_000)
        graph.add_simple_edge(0, 4, selectivity=1 / 200)
        graph.add_simple_edge(2, 5, selectivity=1 / 500)   # customer-city
        graph.add_simple_edge(3, 6, selectivity=1 / 100)   # product-brand
        return graph, cards

    def test_all_algorithms_agree(self):
        graph, cards = self._build()
        reference = optimize(graph, cards).cost
        for algorithm in ("dpccp", "dpsize", "dpsub", "topdown"):
            assert optimize(graph, cards, algorithm).cost == pytest.approx(
                reference
            )

    def test_snowflake_never_blows_up_intermediates(self):
        graph, cards = self._build()
        result = optimize(graph, cards)
        # key–foreign-key joins preserve fact cardinality; an optimal
        # C_out plan must never exceed it in any intermediate
        from repro.explain import plan_summary

        summary = plan_summary(result.plan)
        assert summary["max_intermediate_rows"] <= 1e7 + 1
        assert summary["output_rows"] == pytest.approx(1e7)
        assert "sales" in explain(result.plan, graph.node_names)

    def test_greedy_gap_bounded_here(self):
        graph, cards = self._build()
        exact = optimize(graph, cards).cost
        greedy = optimize(graph, cards, "greedy").cost
        assert greedy >= exact - 1e-6

    def test_stats_consistent(self):
        graph, cards = self._build()
        result = optimize(graph, cards)
        # snowflake = star over composite nodes: table entries match
        # the exhaustive count
        from repro.core import exhaustive

        assert result.stats.table_entries == len(
            exhaustive.connected_sets(graph)
        )
        assert result.stats.ccp_emitted == exhaustive.count_csg_cmp_pairs(
            graph
        )


class TestSimplifyThenOptimizePipeline:
    """Simplification -> conflict analysis -> DPhyp, end to end."""

    def test_simplified_query_explores_more_and_stays_correct(self):
        from repro.algebra import (
            Equals,
            JOIN,
            LEFT_OUTER,
            attr,
            leaf,
            node,
            optimize_operator_tree,
            simplify_outer_joins,
        )
        from repro.engine import (
            base_relation,
            evaluate_plan,
            evaluate_tree,
            rows_as_bag,
        )

        r = base_relation("R", ["a"], [(1,), (2,), (3,)])
        s = base_relation("S", ["a"], [(1,), (1,), (2,)])
        t = base_relation("T", ["a"], [(1,), (2,), (9,)])
        tree = node(
            JOIN,
            node(LEFT_OUTER, leaf(r), leaf(s),
                 Equals(attr("R.a"), attr("S.a"), selectivity=0.4)),
            leaf(t),
            Equals(attr("S.a"), attr("T.a"), selectivity=0.4),
        )
        expected = rows_as_bag(evaluate_tree(tree))

        raw = optimize_operator_tree(tree)
        simplified_tree = simplify_outer_joins(tree)
        cooked = optimize_operator_tree(simplified_tree)

        assert cooked.stats.ccp_emitted >= raw.stats.ccp_emitted
        assert cooked.cost <= raw.cost + 1e-9
        for result in (raw, cooked):
            got = rows_as_bag(
                evaluate_plan(result.plan, result.compiled.analysis.relations)
            )
            assert got == expected

"""The examples must run cleanly — they are part of the public API
surface and double as integration tests."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example should print something"


def test_examples_exist():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3

"""Concurrent multi-process access to one plan-store file.

N writer processes and M reader processes share a single SQLite store.
WAL mode plus ``busy_timeout`` and single-writer ``BEGIN IMMEDIATE``
transactions must deliver:

* **no lost mutations** — after the dust settles, the store contains
  every entry each writer committed (each writer's full key range);
* **no lock escapes** — no worker ever sees ``database is locked`` (or
  any other exception) surface out of the store API;
* **byte-identical plans** — every recipe read back compares equal,
  via ``repr``, to what its writer put in.

Workers are module-level functions (multiprocessing 'fork'/'spawn'
portability) and report through a queue; any exception in a worker is
shipped back and fails the test.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback

from repro.cache import PlanCache, PlanStore

WRITERS = 3
READERS = 2
ROUNDS = 25
CAPACITY = 1024


def _writer_key(writer: int, i: int):
    return (1, f"writer-{writer}-{i}", ("auto", "hyperedges", ("m", "q"), 14))


def _writer_recipe(writer: int, i: int):
    return (writer * 1000 + i, (writer, i))


def _writer_proc(path, writer, rounds, queue):
    """Add one entry per round, syncing after every addition."""
    try:
        store = PlanStore(path, busy_timeout=30.0)
        cache = PlanCache(CAPACITY)
        committed = 0
        for i in range(rounds):
            cache.store(
                _writer_key(writer, i),
                _writer_recipe(writer, i),
                structure=f"w{writer}",
                cost=float(i),
            )
            committed += store.sync_from(cache)
        failed = store.failed_syncs
        store.close()
        queue.put(("writer", writer, committed, failed, None))
    except BaseException:  # pragma: no cover - shipped to the assert
        queue.put(("writer", writer, 0, 0, traceback.format_exc()))


def _reader_proc(path, reader, deadline, queue):
    """Open-load-validate in a loop while the writers churn."""
    try:
        loads = 0
        while time.time() < deadline:
            store = PlanStore(path, busy_timeout=30.0)
            cache = store.load(capacity=CAPACITY)
            for key, entry in cache.snapshot_entries():
                # every visible entry is a committed writer entry with
                # the exact recipe its writer produced
                assert isinstance(key, tuple) and key[0] == 1
                tag = key[1]
                assert tag.startswith("writer-"), tag
                _, w, i = tag.split("-")
                expected = _writer_recipe(int(w), int(i))
                assert repr(entry.recipe) == repr(expected), (
                    f"mangled recipe for {tag}: "
                    f"{entry.recipe!r} != {expected!r}"
                )
            store.close()
            loads += 1
        queue.put(("reader", reader, loads, 0, None))
    except BaseException:  # pragma: no cover - shipped to the assert
        queue.put(("reader", reader, 0, 0, traceback.format_exc()))


def _run_herd(path):
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    deadline = time.time() + 3.0
    procs = [
        ctx.Process(
            target=_writer_proc, args=(path, w, ROUNDS, queue)
        )
        for w in range(WRITERS)
    ] + [
        ctx.Process(
            target=_reader_proc, args=(path, r, deadline, queue)
        )
        for r in range(READERS)
    ]
    for proc in procs:
        proc.start()
    reports = [queue.get(timeout=120) for _ in procs]
    for proc in procs:
        proc.join(timeout=30)
        assert proc.exitcode == 0
    return reports


def test_writers_and_readers_share_one_store(tmp_path):
    path = str(tmp_path / "shared.sqlite")
    # pre-create so workers race on content, not on file creation
    PlanStore(path).close()

    reports = _run_herd(path)

    failures = [r[4] for r in reports if r[4] is not None]
    assert not failures, "\n\n".join(failures)

    writer_reports = [r for r in reports if r[0] == "writer"]
    reader_reports = [r for r in reports if r[0] == "reader"]
    assert len(writer_reports) == WRITERS
    assert len(reader_reports) == READERS

    # no "database is locked" escapes: every sync of every writer
    # landed (busy_timeout absorbed all contention)
    for _, writer, committed, failed, _tb in writer_reports:
        assert failed == 0, f"writer {writer} had {failed} failed syncs"
        assert committed == ROUNDS, (
            f"writer {writer} committed {committed}/{ROUNDS}"
        )
    # the readers actually exercised concurrent loads
    assert sum(r[2] for r in reader_reports) > 0

    # no lost mutations: the final store holds every committed entry
    with PlanStore(path) as store:
        final = store.load(capacity=CAPACITY)
    assert len(final) == WRITERS * ROUNDS
    for writer in range(WRITERS):
        for i in range(ROUNDS):
            entry, status = final.probe(_writer_key(writer, i))
            assert status == "hit", f"lost writer-{writer}-{i}"
            assert repr(entry.recipe) == repr(_writer_recipe(writer, i))
            assert entry.structure == f"w{writer}"


def test_same_process_thread_safety(tmp_path):
    """One store instance shared by threads (the optimizer's shape)."""
    import threading

    path = str(tmp_path / "threads.sqlite")
    store = PlanStore(path, busy_timeout=30.0)
    errors = []

    def hammer(thread_id):
        try:
            cache = PlanCache(CAPACITY)
            for i in range(20):
                cache.store(
                    (1, f"t{thread_id}-{i}",
                     ("auto", "hyperedges", ("m", "q"), 14)),
                    (thread_id, (i, i)),
                )
                store.sync_from(cache)
        except BaseException:  # pragma: no cover
            errors.append(traceback.format_exc())

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, "\n\n".join(errors)
    assert store.failed_syncs == 0
    # NB: each thread attaches its own cache, so the per-instance
    # cursor resets between threads and entries are re-upserted — the
    # content must still be complete and exact
    final = store.load(capacity=CAPACITY)
    store.close()
    for t in range(4):
        for i in range(20):
            entry, status = final.probe(
                (1, f"t{t}-{i}", ("auto", "hyperedges", ("m", "q"), 14))
            )
            assert status == "hit"
            assert entry.recipe == (t, (i, i))

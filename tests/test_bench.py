"""Tests for the benchmark harness, experiment drivers, and CLI."""

import pytest

from repro.bench.experiments import EXPERIMENTS, table_cycle4, table_star4
from repro.bench.harness import (
    ExperimentResult,
    Series,
    measure_algorithm,
    measure_tree,
    scaled,
    time_call,
)
from repro.bench.reporting import (
    render_markdown,
    render_table,
    summarize_winners,
)
from repro.workloads import chain
from repro.workloads.nonreorderable import star_antijoin_tree


class TestScaled:
    def test_default_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        monkeypatch.delenv("REPRO_BENCH_MAX_N", raising=False)
        assert scaled(16, 12) == 12
        assert scaled(8, 12) == 8

    def test_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert scaled(16, 12) == 16

    def test_custom_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        monkeypatch.setenv("REPRO_BENCH_MAX_N", "6")
        assert scaled(16, 12) == 6


class TestMeasurement:
    def test_time_call_returns_positive(self):
        assert time_call(lambda: sum(range(100)), repeat=2) > 0.0

    def test_measure_algorithm(self):
        query = chain(4, seed=0)
        m = measure_algorithm(query.graph, query.cardinalities, "dphyp",
                              repeat=1)
        assert m.milliseconds > 0
        assert m.ccp == 10  # chain-4: (64-4)/6
        assert m.cost is not None

    def test_measure_tree(self):
        tree = star_antijoin_tree(3, 1, seed=0)
        m = measure_tree(tree, repeat=1)
        assert m.milliseconds > 0
        assert m.cost is not None


class TestExperimentDrivers:
    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table-cycle4",
            "fig5-cycle8",
            "fig5-cycle16",
            "table-star4",
            "fig6-star8",
            "fig6-star16",
            "fig7-regular",
            "fig8a-antijoin",
            "fig8b-outerjoin",
            "ablation-dphyp",
        }

    def test_table_cycle4_shape(self):
        result = table_cycle4()
        assert result.x_values == [0, 1]
        assert [s.label for s in result.series] == ["dphyp", "dpsize", "dpsub"]
        for series in result.series:
            assert set(series.points) == {0, 1}
        # all algorithms agree on enumeration-theoretic facts:
        # DPhyp emits each ccp once, DPsub the same, DPsize twice
        hyp = result.series_by_label("dphyp")
        sub = result.series_by_label("dpsub")
        size = result.series_by_label("dpsize")
        for split in result.x_values:
            assert hyp.points[split].ccp == sub.points[split].ccp
            assert size.points[split].ccp == 2 * hyp.points[split].ccp

    def test_table_star4_dphyp_never_explores_more(self):
        result = table_star4()
        hyp = result.series_by_label("dphyp")
        for other in result.series:
            for split in result.x_values:
                assert hyp.points[split].ccp <= other.points[split].ccp * 2

    def test_small_fig8_drivers(self):
        from repro.bench.experiments import fig8a_antijoins, fig8b_outerjoins

        result_a = fig8a_antijoins(n=4)
        assert result_a.x_values == [0, 1, 2, 3, 4]
        hyper = result_a.series_by_label("DPhyp hypernodes")
        # full antijoin star collapses the explored space
        assert hyper.points[4].ccp < hyper.points[0].ccp

        result_b = fig8b_outerjoins(n=5)
        assert len(result_b.series) == 2  # DPsub excluded, as in the paper

    def test_ablation_driver_variants_agree(self):
        from repro.bench.experiments import ablation_dphyp

        result = ablation_dphyp(n=5)
        labels = [series.label for series in result.series]
        assert labels == ["dphyp", "dphyp-nomemo", "dphyp-recursive"]
        for satellites in result.x_values:
            points = [series.points[satellites] for series in result.series]
            # same enumeration regardless of knob: identical ccps/costs
            assert len({point.ccp for point in points}) == 1
            assert len({round(point.cost, 6) for point in points}) == 1


class TestRegressionHarness:
    def test_run_and_validate_tiny(self):
        from repro.bench.regression import run_regression, validate_result

        document = run_regression(max_n=5, repeat=1, label="unit-test")
        validate_result(document)
        shapes = [entry["workload"] for entry in document["workloads"]]
        assert shapes == ["chain", "cycle", "star"]
        for entry in document["workloads"]:
            iterative = entry["results"]["dphyp"]
            recursive = entry["results"]["dphyp-recursive"]
            # identical enumeration and identical optimum, per PR gate
            assert iterative["ccp"] == recursive["ccp"]
            assert iterative["cost"] == pytest.approx(recursive["cost"])
        assert set(document["speedups"]) == {
            entry["query"] for entry in document["workloads"]
        }

    def test_validate_rejects_bad_documents(self):
        from repro.bench import regression

        with pytest.raises(ValueError):
            regression.validate_result({})
        document = regression.run_regression(max_n=4, repeat=1)
        document["schema_version"] = 999
        with pytest.raises(ValueError):
            regression.validate_result(document)

    def test_cli_writes_json(self, tmp_path, capsys):
        import json

        from repro.bench.regression import main, validate_result

        out = tmp_path / "BENCH_smoke.json"
        assert main(["--max-n", "4", "--repeat", "1", "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        validate_result(document)
        assert "regression suite" in capsys.readouterr().out

    def test_bench_cli_regression_subcommand(self, capsys):
        from repro.bench.__main__ import main

        assert main(["regression", "--max-n", "4", "--repeat", "1"]) == 0
        assert "iterative speedup" in capsys.readouterr().out


class TestRegressionCompare:
    def document(self):
        from repro.bench.regression import run_regression

        return run_regression(max_n=4, repeat=1, label="compare-test")

    def test_identical_documents_are_clean(self):
        from repro.bench.regression import compare_documents

        document = self.document()
        assert compare_documents(document, document) == []

    def test_ccp_and_cost_drift_flagged(self):
        import copy

        from repro.bench.regression import compare_documents

        current = self.document()
        baseline = copy.deepcopy(current)
        baseline["workloads"][0]["results"]["dphyp"]["ccp"] += 1
        baseline["workloads"][1]["results"]["dphyp"]["cost"] *= 2
        problems = compare_documents(current, baseline)
        assert any("search space drift" in p for p in problems)
        assert any("plan drift" in p for p in problems)

    def test_slowdown_uses_normalized_ratio(self):
        import copy

        from repro.bench.regression import compare_documents

        current = self.document()
        baseline = copy.deepcopy(current)
        for entry in current["workloads"]:
            # dphyp got 2x slower while the recursive reference is
            # unchanged -> normalized slowdown 2x > tolerance
            entry["results"]["dphyp"]["ms"] *= 2
        problems = compare_documents(current, baseline, tolerance=1.3)
        assert len([p for p in problems if "slower" in p]) == len(
            current["workloads"]
        )
        # a uniformly slower machine (both algorithms 2x) is NOT a
        # regression: the normalized ratio cancels the hardware
        hardware = copy.deepcopy(baseline)
        for entry in hardware["workloads"]:
            for measurement in entry["results"].values():
                measurement["ms"] *= 2
        assert compare_documents(hardware, baseline, tolerance=1.3) == []

    def test_baseline_coverage_loss_flagged(self):
        import copy

        from repro.bench.regression import compare_documents

        baseline = self.document()
        current = copy.deepcopy(baseline)
        current["workloads"] = [w for w in current["workloads"]
                                if w["workload"] != "star"]
        del current["workloads"][0]["results"]["dphyp-recursive"]
        problems = compare_documents(current, baseline)
        assert any("star" in p and "coverage loss" in p for p in problems)
        assert any("dphyp-recursive" in p and "coverage loss" in p
                   for p in problems)

    def test_size_mismatch_reported_not_compared(self):
        import copy

        from repro.bench.regression import compare_documents

        current = self.document()
        baseline = copy.deepcopy(current)
        baseline["workloads"][0]["query"] = "chain-99"
        problems = compare_documents(current, baseline)
        assert any("size mismatch" in p for p in problems)

    def test_cli_compare_flag(self, tmp_path, capsys):
        import json

        from repro.bench.regression import main

        out = tmp_path / "base.json"
        assert main(["--max-n", "4", "--repeat", "1",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        # comparing a fresh run against itself passes (huge tolerance:
        # tiny sub-ms runs are timing noise, only the deterministic
        # ccp/cost guards should decide here)
        assert main(["--max-n", "4", "--repeat", "1",
                     "--compare", str(out), "--tolerance", "1e9"]) == 0
        assert "no regression" in capsys.readouterr().out
        # ...and a doctored baseline fails with a non-zero exit
        document = json.loads(out.read_text())
        document["workloads"][0]["results"]["dphyp"]["ccp"] += 1
        out.write_text(json.dumps(document))
        assert main(["--max-n", "4", "--repeat", "1",
                     "--compare", str(out), "--tolerance", "1e9"]) == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestKernelTier:
    def tiny_document(self):
        from repro.bench.regression import run_regression

        # --max-n 6 collapses the chain ladder to one entry per shape
        return run_regression(
            max_n=6, repeat=1, label="kernel-unit", tier="kernel"
        )

    def test_run_and_validate(self):
        from repro.bench.regression import validate_result

        document = self.tiny_document()
        validate_result(document)
        assert document["tier"] == "kernel"
        shapes = [entry["workload"] for entry in document["workloads"]]
        # clamped sizes dedupe the 30/40/60 chain ladder
        assert shapes == ["chain-6", "cycle-6", "star-6", "clique-6"]
        for entry in document["workloads"]:
            base = entry["results"]["dphyp"]
            new = entry["results"]["dphyp-kernel"]
            # the kernel contract: exactly equal, not approximately
            assert new["ccp"] == base["ccp"]
            assert new["cost"] == base["cost"]

    def test_gate_passes_on_equivalent_fast_kernel(self):
        from repro.bench.regression import (
            KERNEL_GATE_MIN_N,
            kernel_gate_problems,
        )

        document = self.tiny_document()
        # promote one workload past the gate size and make the kernel
        # "fast" so only the synthetic numbers decide
        entry = document["workloads"][0]
        entry["n_relations"] = KERNEL_GATE_MIN_N
        entry["results"]["dphyp"]["ms"] = 10.0
        entry["results"]["dphyp-kernel"]["ms"] = 2.0
        assert kernel_gate_problems(document, min_speedup=3.0) == []

    def test_gate_flags_slow_kernel_and_drift(self):
        from repro.bench.regression import (
            KERNEL_GATE_MIN_N,
            kernel_gate_problems,
        )

        document = self.tiny_document()
        entry = document["workloads"][0]
        entry["n_relations"] = KERNEL_GATE_MIN_N
        entry["results"]["dphyp"]["ms"] = 10.0
        entry["results"]["dphyp-kernel"]["ms"] = 9.0  # only 1.1x
        document["workloads"][1]["results"]["dphyp-kernel"]["cost"] *= 2
        document["workloads"][2]["results"]["dphyp-kernel"]["ccp"] += 1
        problems = kernel_gate_problems(document, min_speedup=3.0)
        assert any("speedup" in p for p in problems)
        assert any("bit-identical" in p for p in problems)
        assert any("search space drift" in p for p in problems)

    def test_gate_refuses_to_pass_vacuously(self):
        from repro.bench.regression import kernel_gate_problems

        document = self.tiny_document()  # every workload below n=30
        problems = kernel_gate_problems(document, min_speedup=3.0)
        assert any("checked nothing" in p for p in problems)

    def test_committed_baseline_is_valid_and_meets_the_bar(self):
        import json
        import pathlib

        from repro.bench.regression import (
            KERNEL_GATE_MIN_N,
            validate_result,
        )

        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_pr8_kernel.json"
        )
        document = json.loads(path.read_text())
        validate_result(document)
        assert document["tier"] == "kernel"
        gated = [
            entry["query"]
            for entry in document["workloads"]
            if entry["n_relations"] >= KERNEL_GATE_MIN_N
        ]
        assert gated  # the committed run must exercise the gate
        for query in gated:
            assert document["speedups"][query] >= 3.0, query

    def test_cli_tier_and_min_speedup(self, capsys):
        from repro.bench.regression import main

        # tiny sizes stay below KERNEL_GATE_MIN_N -> the gate must
        # refuse to pass vacuously
        assert main(["--tier", "kernel", "--max-n", "4",
                     "--repeat", "1", "--min-speedup", "1e-9"]) == 1
        captured = capsys.readouterr()
        assert "kernel speedup" in captured.out
        assert "GATE" in captured.err

    def test_cli_min_speedup_requires_kernel_tier(self, capsys):
        from repro.bench.regression import main

        with pytest.raises(SystemExit):
            main(["--min-speedup", "2"])
        assert "--tier kernel" in capsys.readouterr().err


class TestProfileSubcommand:
    def test_report_structure_and_phases(self):
        from repro.bench.profile import PHASE_ORDER, profile_workload

        report = profile_workload("chain", 8, algorithm="dphyp-kernel")
        assert report["workload"] == "chain-8"
        assert report["ccp"] > 0
        assert set(report["phases_ms"]) == set(PHASE_ORDER)
        # own-time buckets are disjoint, so they sum to the total
        assert sum(report["phases_ms"].values()) == pytest.approx(
            report["total_ms"], abs=0.1
        )
        assert report["hot"]
        assert {"function", "phase", "ncalls", "tottime_ms"} <= set(
            report["hot"][0]
        )
        # the enumeration must show up as search time on any real run
        assert report["phases_ms"]["search"] > 0

    def test_phase_classification(self):
        from repro.bench.profile import classify_phase

        assert classify_phase("src/repro/core/dphyp.py") == "search"
        assert classify_phase("src/repro/core/kernel/solver.py") == "search"
        assert (
            classify_phase("src/repro/core/kernel/costing.py") == "costing"
        )
        assert classify_phase("src/repro/cost/models.py") == "costing"
        assert classify_phase("src/repro/core/plans.py") == "materialize"
        assert classify_phase("src/repro/optimizer.py") == "other"

    def test_cli_text_and_json(self, capsys):
        import json

        from repro.bench.profile import main

        assert main(["--workload", "cycle", "--n", "6", "--top", "3"]) == 0
        assert "phase totals" in capsys.readouterr().out
        assert main(["--workload", "star", "--n", "4", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["workload"] == "star-4"
        assert len(document["hot"]) <= 10

    def test_bench_cli_dispatches_profile(self, capsys):
        from repro.bench.__main__ import main

        assert main(["profile", "--workload", "chain", "--n", "5"]) == 0
        assert "profile: chain-5" in capsys.readouterr().out


class TestReporting:
    def _dummy_result(self):
        from repro.bench.harness import Measurement
        from repro.core.stats import SearchStats

        stats = SearchStats(ccp_emitted=7)
        series = Series(label="dphyp",
                        points={0: Measurement(1.234, stats, 9.0)})
        return ExperimentResult(
            experiment_id="x",
            title="Dummy",
            x_label="splits",
            x_values=[0, 1],
            series=[series],
            notes="scaled",
        )

    def test_render_table(self):
        text = render_table(self._dummy_result())
        assert "Dummy" in text
        assert "dphyp [ms]" in text
        assert "1.23" in text
        assert "-" in text  # missing point at x=1
        assert "scaled" in text

    def test_render_markdown(self):
        text = render_markdown(self._dummy_result())
        assert text.startswith("### Dummy")
        assert "| splits |" in text

    def test_summarize_winners(self):
        result = table_cycle4()
        summary = summarize_winners(result)
        assert "fastest" in summary and "slowest" in summary


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7-regular" in out

    def test_run_single(self, capsys):
        from repro.bench.__main__ import main

        assert main(["run", "table-cycle4"]) == 0
        out = capsys.readouterr().out
        assert "Cycle Queries with 4 Relations" in out
        assert "shape:" in out

    def test_run_unknown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["run", "nope"]) == 2

"""Tests for the benchmark harness, experiment drivers, and CLI."""

import pytest

from repro.bench.experiments import EXPERIMENTS, table_cycle4, table_star4
from repro.bench.harness import (
    ExperimentResult,
    Series,
    measure_algorithm,
    measure_tree,
    scaled,
    time_call,
)
from repro.bench.reporting import (
    render_markdown,
    render_table,
    summarize_winners,
)
from repro.workloads import chain
from repro.workloads.nonreorderable import star_antijoin_tree


class TestScaled:
    def test_default_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        monkeypatch.delenv("REPRO_BENCH_MAX_N", raising=False)
        assert scaled(16, 12) == 12
        assert scaled(8, 12) == 8

    def test_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert scaled(16, 12) == 16

    def test_custom_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        monkeypatch.setenv("REPRO_BENCH_MAX_N", "6")
        assert scaled(16, 12) == 6


class TestMeasurement:
    def test_time_call_returns_positive(self):
        assert time_call(lambda: sum(range(100)), repeat=2) > 0.0

    def test_measure_algorithm(self):
        query = chain(4, seed=0)
        m = measure_algorithm(query.graph, query.cardinalities, "dphyp",
                              repeat=1)
        assert m.milliseconds > 0
        assert m.ccp == 10  # chain-4: (64-4)/6
        assert m.cost is not None

    def test_measure_tree(self):
        tree = star_antijoin_tree(3, 1, seed=0)
        m = measure_tree(tree, repeat=1)
        assert m.milliseconds > 0
        assert m.cost is not None


class TestExperimentDrivers:
    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table-cycle4",
            "fig5-cycle8",
            "fig5-cycle16",
            "table-star4",
            "fig6-star8",
            "fig6-star16",
            "fig7-regular",
            "fig8a-antijoin",
            "fig8b-outerjoin",
        }

    def test_table_cycle4_shape(self):
        result = table_cycle4()
        assert result.x_values == [0, 1]
        assert [s.label for s in result.series] == ["dphyp", "dpsize", "dpsub"]
        for series in result.series:
            assert set(series.points) == {0, 1}
        # all algorithms agree on enumeration-theoretic facts:
        # DPhyp emits each ccp once, DPsub the same, DPsize twice
        hyp = result.series_by_label("dphyp")
        sub = result.series_by_label("dpsub")
        size = result.series_by_label("dpsize")
        for split in result.x_values:
            assert hyp.points[split].ccp == sub.points[split].ccp
            assert size.points[split].ccp == 2 * hyp.points[split].ccp

    def test_table_star4_dphyp_never_explores_more(self):
        result = table_star4()
        hyp = result.series_by_label("dphyp")
        for other in result.series:
            for split in result.x_values:
                assert hyp.points[split].ccp <= other.points[split].ccp * 2

    def test_small_fig8_drivers(self):
        from repro.bench.experiments import fig8a_antijoins, fig8b_outerjoins

        result_a = fig8a_antijoins(n=4)
        assert result_a.x_values == [0, 1, 2, 3, 4]
        hyper = result_a.series_by_label("DPhyp hypernodes")
        # full antijoin star collapses the explored space
        assert hyper.points[4].ccp < hyper.points[0].ccp

        result_b = fig8b_outerjoins(n=5)
        assert len(result_b.series) == 2  # DPsub excluded, as in the paper


class TestReporting:
    def _dummy_result(self):
        from repro.bench.harness import Measurement
        from repro.core.stats import SearchStats

        stats = SearchStats(ccp_emitted=7)
        series = Series(label="dphyp",
                        points={0: Measurement(1.234, stats, 9.0)})
        return ExperimentResult(
            experiment_id="x",
            title="Dummy",
            x_label="splits",
            x_values=[0, 1],
            series=[series],
            notes="scaled",
        )

    def test_render_table(self):
        text = render_table(self._dummy_result())
        assert "Dummy" in text
        assert "dphyp [ms]" in text
        assert "1.23" in text
        assert "-" in text  # missing point at x=1
        assert "scaled" in text

    def test_render_markdown(self):
        text = render_markdown(self._dummy_result())
        assert text.startswith("### Dummy")
        assert "| splits |" in text

    def test_summarize_winners(self):
        result = table_cycle4()
        summary = summarize_winners(result)
        assert "fastest" in summary and "slowest" in summary


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7-regular" in out

    def test_run_single(self, capsys):
        from repro.bench.__main__ import main

        assert main(["run", "table-cycle4"]) == 0
        out = capsys.readouterr().out
        assert "Cycle Queries with 4 Relations" in out
        assert "shape:" in out

    def test_run_unknown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["run", "nope"]) == 2

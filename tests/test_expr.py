"""Tests for attributes, predicates, and aggregates."""

import pytest

from repro.algebra.expr import (
    Aggregate,
    Attribute,
    Comparison,
    ComplexPredicate,
    Conjunction,
    Equals,
    FunctionPredicate,
    attr,
    tables_of,
)


class TestAttribute:
    def test_qualified(self):
        attribute = Attribute("orders", "o_id")
        assert attribute.qualified == "orders.o_id"
        assert str(attribute) == "orders.o_id"

    def test_parse(self):
        assert attr("R.a") == Attribute("R", "a")
        with pytest.raises(ValueError):
            attr("no_dot")
        with pytest.raises(ValueError):
            attr(".a")


class TestEquals:
    def test_tables(self):
        predicate = Equals(attr("R.a"), attr("S.b"))
        assert predicate.tables == {"R", "S"}
        assert predicate.flex_tables == frozenset()

    def test_evaluation(self):
        predicate = Equals(attr("R.a"), attr("S.b"))
        assert predicate.evaluate({"R.a": 1, "S.b": 1})
        assert not predicate.evaluate({"R.a": 1, "S.b": 2})

    def test_null_rejecting(self):
        """Strong predicate: NULL on either side -> not satisfied."""
        predicate = Equals(attr("R.a"), attr("S.b"))
        assert not predicate.evaluate({"R.a": None, "S.b": None})
        assert not predicate.evaluate({"R.a": 1, "S.b": None})
        assert not predicate.evaluate({"R.a": 1})  # missing = NULL

    def test_str(self):
        assert str(Equals(attr("R.a"), attr("S.b"))) == "R.a = S.b"


class TestComparison:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 1, 2, False),
            (">=", 3, 2, True),
            ("=", 2, 2, True),
            ("!=", 2, 2, False),
        ],
    )
    def test_operators(self, op, a, b, expected):
        predicate = Comparison(attr("R.a"), op, attr("S.b"))
        assert predicate.evaluate({"R.a": a, "S.b": b}) is expected

    def test_null_rejecting(self):
        predicate = Comparison(attr("R.a"), "<", attr("S.b"))
        assert not predicate.evaluate({"R.a": None, "S.b": 5})

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            Comparison(attr("R.a"), "~", attr("S.b"))


class TestConjunction:
    def test_combines_tables_and_selectivity(self):
        p1 = Equals(attr("R.a"), attr("S.b"), selectivity=0.5)
        p2 = Equals(attr("S.b"), attr("T.c"), selectivity=0.2)
        conj = Conjunction((p1, p2))
        assert conj.tables == {"R", "S", "T"}
        assert conj.selectivity == pytest.approx(0.1)

    def test_evaluation(self):
        p1 = Equals(attr("R.a"), attr("S.b"))
        p2 = Equals(attr("S.b"), attr("T.c"))
        conj = Conjunction((p1, p2))
        assert conj.evaluate({"R.a": 1, "S.b": 1, "T.c": 1})
        assert not conj.evaluate({"R.a": 1, "S.b": 1, "T.c": 2})

    def test_conjoin_helper(self):
        p1 = Equals(attr("R.a"), attr("S.b"))
        assert p1.conjoin(None) is p1
        combined = p1.conjoin(Equals(attr("S.b"), attr("T.c")))
        assert isinstance(combined, Conjunction)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Conjunction(())


class TestComplexPredicate:
    def test_groups(self):
        predicate = ComplexPredicate(
            left_group=frozenset({"R1", "R2"}),
            right_group=frozenset({"R4"}),
            flex_group=frozenset({"R3"}),
        )
        assert predicate.tables == {"R1", "R2", "R3", "R4"}
        assert predicate.flex_tables == {"R3"}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            ComplexPredicate(
                left_group=frozenset({"R1"}),
                right_group=frozenset({"R1"}),
            )

    def test_empty_side_rejected(self):
        with pytest.raises(ValueError):
            ComplexPredicate(
                left_group=frozenset(), right_group=frozenset({"R1"})
            )

    def test_evaluation_via_fn(self):
        predicate = ComplexPredicate(
            left_group=frozenset({"R"}),
            right_group=frozenset({"S"}),
            fn=lambda row: row["R.a"] + row["S.b"] == 3,
        )
        assert predicate.evaluate({"R.a": 1, "S.b": 2})
        assert not predicate.evaluate({"R.a": 1, "S.b": 1})

    def test_statistics_only_cannot_evaluate(self):
        predicate = ComplexPredicate(
            left_group=frozenset({"R"}), right_group=frozenset({"S"})
        )
        with pytest.raises(ValueError):
            predicate.evaluate({})


class TestFunctionPredicateAndAggregate:
    def test_function_predicate(self):
        predicate = FunctionPredicate(
            fn=lambda row: row["R.a"] > 0, over=frozenset({"R"})
        )
        assert predicate.tables == {"R"}
        assert predicate.evaluate({"R.a": 1})

    def test_aggregate(self):
        count = Aggregate(name="G.cnt", fn=len)
        assert count.compute([{"S.a": 1}, {"S.a": 2}]) == 2
        total = Aggregate(name="G.sum", fn=lambda rows: sum(r["S.a"] for r in rows))
        assert total.compute([{"S.a": 1}, {"S.a": 2}]) == 3

    def test_tables_of(self):
        predicates = [
            Equals(attr("R.a"), attr("S.b")),
            Equals(attr("S.b"), attr("T.c")),
        ]
        assert tables_of(predicates) == {"R", "S", "T"}

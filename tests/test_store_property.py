"""Property-based audit of the SQLite plan store (hypothesis).

Two families of properties:

* **interchange round-trips** — any batch of cache entries survives
  PlanCache -> store -> ``export_document`` -> ``restore_document``
  (and the reverse migration ``dump_document`` ->
  ``import_document`` -> ``load``) with identical keys, recipes,
  structures, costs, and epoch bookkeeping;
* **compaction exactness** — the TTL sweep removes *exactly* the rows
  whose expiry has passed, and the size-budget sweep keeps *exactly*
  the maximal LRU suffix that fits the budget — no row lost to an
  off-by-one, none retained past its bound.

Stores live in per-example temporary directories created inside the
test body (a function-scoped ``tmp_path`` would leak state across
hypothesis examples).
"""

from __future__ import annotations

import os
import sqlite3
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import KEY_VERSION, PlanCache, PlanStore, persist
from repro.cache.store_schema import entry_size

COMMON = dict(deadline=None, max_examples=40)

SUFFIX = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)


def _key(suffix: str):
    return (KEY_VERSION, suffix, ("auto", "hyperedges", ("m", "q"), 14))


RECIPES = st.recursive(
    st.integers(min_value=-(10**6), max_value=10**6),
    lambda inner: st.tuples(inner, inner),
    max_leaves=6,
)

ENTRIES = st.dictionaries(
    SUFFIX,
    st.tuples(
        RECIPES,
        st.one_of(st.none(), st.text(max_size=16)),
        st.one_of(
            st.none(),
            st.floats(
                min_value=0.0, max_value=1e12, allow_nan=False
            ),
        ),
    ),
    min_size=1,
    max_size=20,
)


def _fill(cache: PlanCache, entries: dict) -> None:
    for suffix, (recipe, structure, cost) in entries.items():
        cache.store(_key(suffix), recipe, structure=structure, cost=cost)


@settings(**COMMON)
@given(entries=ENTRIES)
def test_store_load_round_trip(entries):
    cache = PlanCache(64)
    _fill(cache, entries)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.sqlite")
        with PlanStore(path) as store:
            assert store.sync_from(cache) == len(entries)
        with PlanStore(path) as store:
            loaded = store.load(capacity=64)
    assert len(loaded) == len(entries)
    for suffix, (recipe, structure, cost) in entries.items():
        entry, status = loaded.probe(_key(suffix))
        assert status == "hit"
        assert repr(entry.recipe) == repr(recipe)
        assert entry.structure == structure
        assert entry.cost == cost


@settings(**COMMON)
@given(entries=ENTRIES, bumps=st.integers(min_value=0, max_value=3))
def test_export_document_round_trip(entries, bumps):
    """store -> JSON document == the persist module's own view."""
    cache = PlanCache(64)
    for _ in range(bumps):
        cache.bump_epoch()
    _fill(cache, entries)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.sqlite")
        with PlanStore(path) as store:
            store.sync_from(cache)
            document = store.export_document()
    assert document["format"] == persist.FORMAT_NAME
    assert document["key_version"] == KEY_VERSION
    assert len(document["entries"]) == len(entries)
    # each entry row embeds the document epoch (fresh by definition)
    assert all(
        e["epoch"] == document["epoch"] for e in document["entries"]
    )
    restored = persist.restore_document(document)
    assert len(restored) == len(entries)
    for suffix, (recipe, structure, cost) in entries.items():
        entry, status = restored.probe(_key(suffix))
        assert status == "hit"
        assert repr(entry.recipe) == repr(recipe)
        assert entry.structure == structure
        assert entry.cost == cost


@settings(**COMMON)
@given(entries=ENTRIES)
def test_import_document_round_trip(entries):
    """JSON document -> store -> load preserves every entry."""
    cache = PlanCache(64)
    _fill(cache, entries)
    document = persist.dump_document(cache)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.sqlite")
        with PlanStore(path) as store:
            assert store.import_document(document) == len(entries)
            loaded = store.load(capacity=64)
    assert len(loaded) == len(entries)
    for suffix, (recipe, structure, cost) in entries.items():
        entry, status = loaded.probe(_key(suffix))
        assert status == "hit"
        assert repr(entry.recipe) == repr(recipe)


@settings(**COMMON)
@given(
    entries=ENTRIES,
    offsets=st.data(),
)
def test_ttl_compaction_removes_exactly_the_expired(entries, offsets):
    """Rows with expiry <= now vanish; every other row survives."""
    cache = PlanCache(64)
    _fill(cache, entries)
    suffixes = sorted(entries)
    # per-row expiry offsets around a pinned "now" of 1000.0
    expiries = {
        suffix: offsets.draw(
            st.floats(min_value=1.0, max_value=2000.0, allow_nan=False),
            label=f"expiry:{suffix}",
        )
        for suffix in suffixes
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.sqlite")
        store = PlanStore(path, ttl=10_000.0)
        store.sync_from(cache)
        # simulate rows written at varying times: pin each expiry
        conn = sqlite3.connect(path)
        for suffix, expiry in expiries.items():
            conn.execute(
                "UPDATE entries SET expires_at = ? WHERE key = ?",
                (expiry, repr(_key(suffix))),
            )
        conn.commit()
        conn.close()

        swept = store.compact(now=1000.0)
        expected_gone = {s for s, t in expiries.items() if t <= 1000.0}
        assert swept["expired"] == len(expected_gone)
        remaining = {
            row[0]
            for row in sqlite3.connect(path).execute(
                "SELECT key FROM entries"
            )
        }
        store.close()
    assert remaining == {
        repr(_key(s)) for s in suffixes if s not in expected_gone
    }


@settings(**COMMON)
@given(entries=ENTRIES, budget=st.integers(min_value=1, max_value=4000))
def test_size_budget_keeps_exactly_the_fitting_lru_suffix(entries, budget):
    """Survivors = the longest newest-first run that fits the budget."""
    cache = PlanCache(64)
    _fill(cache, entries)
    # dict preserves insertion order == cache write order == seq order
    ordered = list(entries.items())
    sizes = {
        suffix: entry_size(
            repr(_key(suffix)), repr(recipe), structure
        )
        for suffix, (recipe, structure, cost) in ordered
    }
    total = sum(sizes.values())
    expected = dict(ordered)
    for suffix, _payload in ordered:  # evict LRU-first (lowest seq)
        if total <= budget:
            break
        total -= sizes[suffix]
        del expected[suffix]

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.sqlite")
        with PlanStore(path, size_budget=budget) as store:
            store.sync_from(cache)
            remaining = {
                row[0]
                for row in sqlite3.connect(path).execute(
                    "SELECT key FROM entries"
                )
            }
            assert store.rows_evicted == len(entries) - len(expected)
    assert remaining == {repr(_key(s)) for s in expected}

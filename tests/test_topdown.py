"""Tests for the top-down memoization baseline."""

import pytest

from repro.core.dphyp import solve_dphyp
from repro.core.hypergraph import Hypergraph
from repro.core.plans import JoinPlanBuilder
from repro.core.stats import SearchStats
from repro.core.topdown import TopDownMemo, solve_topdown
from repro.workloads import chain, cycle, star
from repro.workloads.random_queries import random_hypergraph_query


class TestCorrectness:
    @pytest.mark.parametrize(
        "query_factory",
        [lambda: chain(6, seed=4), lambda: cycle(6, seed=4), lambda: star(5, seed=4)],
    )
    def test_matches_dphyp(self, query_factory):
        query = query_factory()
        plan_td = solve_topdown(
            query.graph, JoinPlanBuilder(query.graph, query.cardinalities)
        )
        plan_hyp = solve_dphyp(
            query.graph, JoinPlanBuilder(query.graph, query.cardinalities)
        )
        assert plan_td.cost == pytest.approx(plan_hyp.cost)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_hypergraphs(self, seed):
        query = random_hypergraph_query(6, seed, n_hyperedges=2, n_islands=2)
        plan_td = solve_topdown(
            query.graph, JoinPlanBuilder(query.graph, query.cardinalities)
        )
        plan_hyp = solve_dphyp(
            query.graph, JoinPlanBuilder(query.graph, query.cardinalities)
        )
        assert (plan_td is None) == (plan_hyp is None)
        if plan_td is not None:
            assert plan_td.cost == pytest.approx(plan_hyp.cost)


class TestMemoization:
    def test_memo_holds_unplannable_sets(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        solver = TopDownMemo(graph, JoinPlanBuilder(graph, [1.0] * 3))
        assert solver.run() is None
        assert solver.memo[graph.all_nodes] is None

    def test_generate_and_test_pays_failing_probes(self):
        """The memoization family needs tests similar to DPsize's —
        most probes fail on sparse graphs (Section 1)."""
        query = chain(8, seed=0)
        stats = SearchStats()
        solve_topdown(
            query.graph,
            JoinPlanBuilder(query.graph, query.cardinalities, stats=stats),
            stats,
        )
        assert stats.pairs_considered > 4 * stats.ccp_emitted


class TestEdgeCases:
    def test_single_relation(self):
        graph = Hypergraph(n_nodes=1)
        plan = solve_topdown(graph, JoinPlanBuilder(graph, [5.0]))
        assert plan.is_leaf

"""Edge-case tests for the batch entry point ``Optimizer.optimize_many``:
mixed input kinds, disconnected-graph policies, empty batches, parallel
execution, and cache-hit determinism."""

import pytest

from repro import (
    DisconnectedGraphError,
    Hypergraph,
    Optimizer,
    OptimizerConfig,
    QuerySpec,
)
from repro.workloads import generators
from repro.workloads.nonreorderable import star_antijoin_tree
from repro.workloads.repeated import repeated_workload


def mixed_workload():
    """One of each supported input kind."""
    spec = QuerySpec(
        relations={"a": 100, "b": 200, "c": 50},
        joins=[("a", "b", 0.01), ("b", "c", 0.05)],
    )
    bundle = generators.chain(5, seed=2)
    tree = star_antijoin_tree(4, 1, seed=3)
    return [bundle.graph, spec, bundle, tree]


class TestMixedBatches:
    def test_mixed_kinds_in_one_batch(self):
        opt = Optimizer()
        results = opt.optimize_many(mixed_workload())
        assert len(results) == 4
        assert all(result.plan is not None for result in results)
        # the tree result keeps its tree-path fields
        assert results[3].compiled is not None
        assert results[3].mode == "hyperedges"
        # graph-path results carry names via the graph
        assert results[1].relation_names == ["a", "b", "c"]

    def test_batch_matches_individual_calls(self):
        opt = Optimizer(OptimizerConfig(cache="off"))
        workload = mixed_workload()
        batch = opt.optimize_many(workload)
        singles = [opt.optimize(query) for query in workload]
        for one, other in zip(batch, singles):
            assert one.cost == other.cost
            assert one.algorithm == other.algorithm

    def test_hypergraph_without_cardinalities_uses_default(self):
        graph = generators.chain(4, seed=1).graph
        results = Optimizer(
            OptimizerConfig(default_cardinality=42.0)
        ).optimize_many([graph])
        leaf_cards = {
            plan.cardinality for plan in results[0].plan.leaves()
        }
        assert leaf_cards == {42.0}

    def test_empty_batch(self):
        assert Optimizer().optimize_many([]) == []
        assert Optimizer().optimize_many(iter([])) == []

    def test_generator_input(self):
        opt = Optimizer()
        results = opt.optimize_many(
            generators.chain(n, seed=n) for n in (3, 4, 5)
        )
        assert [len(list(r.plan.leaves())) for r in results] == [3, 4, 5]

    def test_unsupported_kind_raises(self):
        with pytest.raises(TypeError, match="cannot optimize"):
            Optimizer().optimize_many([object()])


class TestDisconnectedPolicies:
    def disconnected_graph(self):
        graph = Hypergraph(n_nodes=4)
        graph.add_simple_edge(0, 1, 0.1)
        graph.add_simple_edge(2, 3, 0.1)
        return graph

    def test_raise_policy_propagates_from_batch(self):
        workload = [generators.chain(3, seed=1), self.disconnected_graph()]
        with pytest.raises(DisconnectedGraphError):
            Optimizer().optimize_many(workload)

    def test_plan_none_policy_in_batch(self):
        opt = Optimizer(OptimizerConfig(on_disconnected="plan-none"))
        results = opt.optimize_many(
            [self.disconnected_graph(), generators.chain(3, seed=1)]
        )
        assert results[0].plan is None
        assert results[1].plan is not None
        # only the plannable query was cached
        assert len(opt.plan_cache) == 1

    def test_connect_policy_in_batch(self):
        opt = Optimizer(OptimizerConfig(on_disconnected="connect"))
        results = opt.optimize_many([self.disconnected_graph()])
        assert results[0].plan is not None
        assert results[0].plan.nodes == 0b1111

    def test_connect_policy_caches_connected_form(self):
        opt = Optimizer(OptimizerConfig(on_disconnected="connect"))
        graph = self.disconnected_graph()
        first = opt.optimize_many([graph])[0]
        second = opt.optimize_many([graph])[0]
        assert second.stats.extra["plan_cache"]["event"] == "hit"
        assert second.cost == first.cost


class TestDeterminismAndParallel:
    def test_results_keep_input_order(self):
        opt = Optimizer()
        workload = [generators.chain(n, seed=n) for n in (6, 3, 5, 4)]
        results = opt.optimize_many(workload)
        assert [len(list(r.plan.leaves())) for r in results] == [6, 3, 5, 4]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial(self, workers):
        workload = repeated_workload(
            generators.cycle(7, seed=4), 8, seed=2
        ) + [generators.star(5, seed=5)]
        serial = Optimizer(OptimizerConfig(cache="off")).optimize_many(
            workload
        )
        parallel = Optimizer().optimize_many(workload, parallel=workers)
        for one, other in zip(parallel, serial):
            assert one.cost == pytest.approx(other.cost, rel=1e-12)

    def test_parallel_workers_config_default(self):
        opt = Optimizer(OptimizerConfig(parallel_workers=3))
        workload = repeated_workload(generators.chain(6, seed=1), 6)
        results = opt.optimize_many(workload)
        for result in results[1:]:
            # equal up to float reassociation across node orders
            assert result.cost == pytest.approx(results[0].cost, rel=1e-12)

    def test_parallel_shares_one_cache_entry(self):
        opt = Optimizer()
        workload = repeated_workload(generators.chain(7, seed=3), 12, seed=4)
        opt.optimize_many(workload, parallel=4)
        assert len(opt.plan_cache) == 1
        counters = opt.plan_cache.counters()
        # every query either stored the entry or was served by it
        assert counters["hits"] + counters["stores"] >= len(workload)

    def test_cache_hit_determinism_on_vs_off(self):
        workload = repeated_workload(generators.star(6, seed=7), 5, seed=3)
        off = Optimizer(OptimizerConfig(cache="off")).optimize_many(
            workload, cache=False
        )
        on = Optimizer().optimize_many(workload)
        for cold, served in zip(off, on):
            # equal up to float reassociation across node orders
            assert served.cost == pytest.approx(cold.cost, rel=1e-12)
            assert served.cardinality == pytest.approx(
                cold.cardinality, rel=1e-12
            )
        # identical repeat of the base query: bit-identical result
        assert on[0].cost == off[0].cost
        assert on[0].plan.join_order() == off[0].plan.join_order()

    def test_per_call_cache_override(self):
        opt = Optimizer()   # cache="auto"
        workload = [generators.chain(4, seed=1)] * 3
        uncached = opt.optimize_many(workload, cache=False)
        assert all(r.stats.extra == {} for r in uncached)
        assert len(opt.plan_cache) == 0
        cached = opt.optimize_many(workload)
        assert [r.stats.extra["plan_cache"]["event"] for r in cached] == \
            ["miss", "hit", "hit"]

    def test_cache_off_config_wins_by_default(self):
        opt = Optimizer(OptimizerConfig(cache="off"))
        workload = [generators.chain(4, seed=1)] * 2
        results = opt.optimize_many(workload)
        assert all(r.stats.extra == {} for r in results)
        assert len(opt.plan_cache) == 0

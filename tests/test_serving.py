"""End-to-end tests for the plan-serving daemon (happy paths).

Each test boots a real :class:`~repro.serving.runner.BackgroundServer`
— asyncio front end, persistent worker pool and all — and talks to it
with the blocking :class:`~repro.serving.client.PlanClient` over TCP,
exactly like the bench and the CI smoke job do.
"""

from __future__ import annotations

import pytest

from repro.cache import persist
from repro.optimizer import OptimizerConfig, QuerySpec
from repro.serving import BackgroundServer, PlanClient, ServerError


def chain_spec(n: int = 5, base: float = 100.0, tag: float = 0.0) -> QuerySpec:
    return QuerySpec(
        relations=[(f"r{i}", base + 10.0 * i + tag) for i in range(n)],
        joins=[(f"r{i}", f"r{i + 1}", 0.1) for i in range(n - 1)],
    )


@pytest.fixture
def server():
    with BackgroundServer(OptimizerConfig(cache="on")) as daemon:
        yield daemon


class TestOptimizeLifecycle:
    def test_cold_miss_goes_to_pool_then_parent_serves_hits(self, server):
        with PlanClient(server.address) as client:
            first = client.optimize(chain_spec())
            assert first["ok"] and first["plannable"]
            assert first["via"] == "pool"
            assert first["cache_event"] == "miss"

            second = client.optimize(chain_spec())
            assert second["via"] == "parent"
            assert second["cache_event"] == "hit"
            assert second["cost"] == first["cost"]

            stats = client.stats()
            assert stats["server"]["served_pool"] == 1
            assert stats["server"]["served_parent"] == 1

    def test_isomorphic_relabeling_is_a_parent_hit(self, server):
        relabeled = QuerySpec(
            relations=[(f"x{i}", 100.0 + 10.0 * i) for i in range(5)],
            joins=[(f"x{i}", f"x{i + 1}", 0.1) for i in range(4)],
        )
        with PlanClient(server.address) as client:
            assert client.optimize(chain_spec())["via"] == "pool"
            hit = client.optimize(relabeled)
            assert hit["via"] == "parent"
            assert hit["cache_event"] == "hit"

    def test_worker_stays_warm_via_deltas(self, server):
        with PlanClient(server.address) as client:
            for tag in range(4):
                client.optimize(chain_spec(tag=float(tag)))
            sync = client.stats()["sync"]
            # one cold full warm-up at most; everything later is a delta
            assert sync["full_syncs"] <= 2
            assert sync["delta_syncs"] >= 2
            assert sync["workers_reporting"] == 1

    def test_hello_and_ping(self, server):
        with PlanClient(server.address) as client:
            hello = client.hello()
            assert hello["protocol"] == 2
            assert hello["workers"] == 1
            assert hello["pipeline_window"] >= 1
            assert "shared_tier" in hello
            assert client.ping() is True

    def test_unplannable_query_is_bad_request(self, server):
        disconnected = QuerySpec(
            relations=[("a", 1.0), ("b", 2.0), ("c", 3.0)],
            joins=[("a", "b", 0.1)],
        )
        with PlanClient(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.optimize(disconnected)
            assert err.value.code in ("bad-request",)
            # the connection survives an application-level error
            assert client.ping() is True

    def test_unknown_op_rejected(self, server):
        with PlanClient(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.request({"op": "no-such-op"})
            assert err.value.code == "unknown-op"


class TestNamespaces:
    def test_namespaces_partition_the_shared_cache(self, server):
        spec = chain_spec()
        with PlanClient(server.address, namespace="tenant-a") as a, \
                PlanClient(server.address, namespace="tenant-b") as b:
            assert a.optimize(spec)["via"] == "pool"
            # same query, other namespace: a miss, not tenant-a's entry
            assert b.optimize(spec)["via"] == "pool"
            # both namespaces now hot, independently
            assert a.optimize(spec)["via"] == "parent"
            assert b.optimize(spec)["via"] == "parent"
            assert a.stats()["server"]["namespaces"] == 2

    def test_default_namespace_is_distinct(self, server):
        spec = chain_spec()
        with PlanClient(server.address) as plain, \
                PlanClient(server.address, namespace="t") as tenant:
            assert plain.optimize(spec)["via"] == "pool"
            assert tenant.optimize(spec)["via"] == "pool"
            assert plain.optimize(spec)["via"] == "parent"

    def test_invalid_namespace_rejected(self, server):
        with PlanClient(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.request({
                    "op": "optimize", "namespace": "",
                    "query": {"relations": [["a", 1.0]]},
                })
            assert err.value.code == "bad-request"


class TestPersistenceOps:
    def test_save_op_and_shutdown_autosave(self, tmp_path):
        path = str(tmp_path / "served.json")
        config = OptimizerConfig(cache="on", cache_path=path)
        with BackgroundServer(config) as daemon:
            with PlanClient(daemon.address) as client:
                client.optimize(chain_spec())
                written = client.save()
                assert written == 1
                # nothing changed since: the save is skipped
                assert client.save() == 0
                client.optimize(chain_spec(tag=5.0))
        # BackgroundServer exit shut the daemon down: autosave ran
        cache = persist.load(path)
        assert len(cache) == 2

    def test_restart_resumes_from_saved_cache(self, tmp_path):
        path = str(tmp_path / "served.json")
        config = OptimizerConfig(cache="on", cache_path=path)
        with BackgroundServer(config) as daemon:
            with PlanClient(daemon.address) as client:
                assert client.optimize(chain_spec())["via"] == "pool"
        with BackgroundServer(config) as daemon:
            with PlanClient(daemon.address) as client:
                # loaded from disk: the restarted daemon serves it warm
                assert client.optimize(chain_spec())["via"] == "parent"

    def test_bump_epoch_invalidates_entries(self, server):
        with PlanClient(server.address) as client:
            assert client.optimize(chain_spec())["via"] == "pool"
            assert client.optimize(chain_spec())["via"] == "parent"
            assert client.bump_epoch() == 1
            # stale entry: recomputed in a worker, then hot again
            recomputed = client.optimize(chain_spec())
            assert recomputed["via"] == "pool"
            assert client.optimize(chain_spec())["via"] == "parent"


class TestShutdownOp:
    def test_client_initiated_shutdown(self):
        daemon = BackgroundServer(OptimizerConfig(cache="on"))
        daemon.start()
        try:
            with PlanClient(daemon.address) as client:
                client.optimize(chain_spec())
                answer = client.shutdown()
                assert answer["ok"] and answer["drained"]
            # the listener is gone: nobody can connect any more
            with pytest.raises(OSError):
                PlanClient(daemon.address, timeout=0.5)
        finally:
            daemon.stop()


def test_module_main_parser_defaults():
    from repro.serving.__main__ import build_parser

    args = build_parser().parse_args([])
    assert args.host == "127.0.0.1"
    assert args.port == 0
    assert args.workers == 1
    assert not args.debug_ops

"""Tests for TES -> hyperedge derivation and predicate translation."""

import pytest

from repro.algebra.expr import Aggregate, ComplexPredicate, Equals, attr
from repro.algebra.hyperedges import (
    EdgeInfo,
    compile_tree,
    hypergraph_from_predicates,
)
from repro.algebra.operators import ANTI, JOIN, LEFT_OUTER, NEST, SEMI
from repro.algebra.optree import Relation, leaf, node
from repro.core import bitset


def rel(name, card=10.0):
    return leaf(Relation(name=name, cardinality=card))


def eq(a, b, sel=0.1):
    return Equals(attr(a), attr(b), selectivity=sel)


class TestCompileTree:
    def test_simple_join_chain(self):
        tree = node(JOIN, node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a")),
                    rel("T"), eq("S.a", "T.a"))
        compiled = compile_tree(tree)
        assert compiled.graph.n_nodes == 3
        assert len(compiled.graph.edges) == 2
        assert all(edge.is_simple for edge in compiled.graph.edges)
        assert compiled.relation_names == ["R", "S", "T"]
        assert compiled.cardinalities == [10.0, 10.0, 10.0]

    def test_payloads_carry_operators(self):
        tree = node(SEMI, rel("R"), rel("S"), eq("R.a", "S.a"))
        compiled = compile_tree(tree)
        (edge,) = compiled.graph.edges
        assert isinstance(edge.payload, EdgeInfo)
        assert edge.payload.operator == SEMI
        assert not edge.payload.is_inner

    def test_conflict_grows_hypernode(self):
        """(R leftouter S) join T with pST: the join's edge must demand
        the whole outer-join result on its left (Section 5.7)."""
        outer = node(LEFT_OUTER, rel("R"), rel("S"), eq("R.a", "S.a"))
        tree = node(JOIN, outer, rel("T"), eq("S.a", "T.a"))
        compiled = compile_tree(tree)
        join_edge = compiled.graph.edges[1]
        assert join_edge.left == compiled.analysis.bitmap({"R", "S"})
        assert join_edge.right == compiled.analysis.bitmap({"T"})

    def test_nest_edge_payload_has_aggregates(self):
        tree = node(NEST, rel("R"), rel("S"), eq("R.a", "S.a"),
                    aggregates=(Aggregate("G0.cnt", len),))
        compiled = compile_tree(tree)
        (edge,) = compiled.graph.edges
        assert edge.payload.aggregates[0].name == "G0.cnt"

    def test_dependent_operator_stored_regular(self):
        """Section 5.6: only regular operators are attached to edges;
        EmitCsgCmp re-derives dependency."""
        from repro.algebra.operators import DEPENDENT_SEMI

        func = leaf(Relation(name="F", cardinality=5.0,
                             free_tables=frozenset({"R"})))
        tree = node(DEPENDENT_SEMI, rel("R"), func, eq("R.a", "F.a"))
        compiled = compile_tree(tree)
        (edge,) = compiled.graph.edges
        assert edge.payload.operator == SEMI  # regular variant
        assert compiled.free_tables[1] == compiled.analysis.bitmap({"R"})

    def test_selectivity_propagated(self):
        tree = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a", sel=0.25))
        compiled = compile_tree(tree)
        assert compiled.graph.edges[0].selectivity == 0.25


class TestPredicateTranslation:
    """Section 6: from join predicates straight to hyperedges."""

    def test_binary_predicate_simple_edge(self):
        graph = hypergraph_from_predicates(
            ["R", "S"], [Equals(attr("R.a"), attr("S.a"))]
        )
        assert graph.edges[0].is_simple

    def test_nary_predicate_with_groups(self):
        predicate = ComplexPredicate(
            left_group=frozenset({"R1", "R2", "R3"}),
            right_group=frozenset({"R4", "R5", "R6"}),
        )
        graph = hypergraph_from_predicates(
            [f"R{i}" for i in range(1, 7)], [predicate]
        )
        (edge,) = graph.edges
        assert edge.left == bitset.set_of(0, 1, 2)
        assert edge.right == bitset.set_of(3, 4, 5)
        assert edge.flex == 0

    def test_flex_group_becomes_w_component(self):
        """R1.a + R2.b + R3.c = R4.d: R3 may move to either side."""
        predicate = ComplexPredicate(
            left_group=frozenset({"R1", "R2"}),
            right_group=frozenset({"R4"}),
            flex_group=frozenset({"R3"}),
        )
        graph = hypergraph_from_predicates(["R1", "R2", "R3", "R4"], [predicate])
        (edge,) = graph.edges
        assert edge.flex == bitset.singleton(2)

    def test_groupless_nary_predicate_split(self):
        from repro.algebra.expr import FunctionPredicate

        predicate = FunctionPredicate(
            fn=lambda row: True, over=frozenset({"A", "B", "C", "D"})
        )
        graph = hypergraph_from_predicates(["A", "B", "C", "D"], [predicate])
        (edge,) = graph.edges
        assert bitset.count(edge.left) == 2
        assert bitset.count(edge.right) == 2

    def test_single_table_predicate_rejected(self):
        from repro.algebra.expr import FunctionPredicate

        predicate = FunctionPredicate(fn=lambda row: True, over=frozenset({"A"}))
        with pytest.raises(ValueError):
            hypergraph_from_predicates(["A", "B"], [predicate])

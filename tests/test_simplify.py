"""Tests for outer-join simplification — engine-verified."""

import pytest

from repro.algebra.expr import Equals, attr
from repro.algebra.operators import FULL_OUTER, JOIN, LEFT_OUTER, SEMI
from repro.algebra.optree import leaf, node, render_tree
from repro.algebra.pipeline import optimize_operator_tree
from repro.algebra.simplify import count_outer_joins, simplify_outer_joins
from repro.engine.evaluate import evaluate_tree
from repro.engine.table import base_relation, rows_as_bag


def rel(name, rows):
    return leaf(base_relation(name, ["a"], [(value,) for value in rows]))


def eq(a, b):
    return Equals(attr(a), attr(b), selectivity=0.3)


class TestRewrites:
    def test_left_outer_demoted_under_rejecting_join(self):
        inner = node(LEFT_OUTER, rel("R", [1, 2]), rel("S", [1]),
                     eq("R.a", "S.a"))
        tree = node(JOIN, inner, rel("T", [1]), eq("S.a", "T.a"))
        simplified = simplify_outer_joins(tree)
        assert count_outer_joins(tree) == 1
        assert count_outer_joins(simplified) == 0

    def test_left_outer_kept_when_not_rejected(self):
        inner = node(LEFT_OUTER, rel("R", [1, 2]), rel("S", [1]),
                     eq("R.a", "S.a"))
        tree = node(JOIN, inner, rel("T", [1]), eq("R.a", "T.a"))  # rejects R
        simplified = simplify_outer_joins(tree)
        assert count_outer_joins(simplified) == 1

    def test_full_outer_to_left_outer(self):
        inner = node(FULL_OUTER, rel("R", [1, 2]), rel("S", [1]),
                     eq("R.a", "S.a"))
        tree = node(JOIN, inner, rel("T", [1]), eq("S.a", "T.a"))
        simplified = simplify_outer_joins(tree)
        ops = [op.op for op in simplified.operators()]
        # S-side padding dies -> fullouter becomes... S is the right
        # input, so padding of S dies: left outer remains
        assert LEFT_OUTER in ops
        assert FULL_OUTER not in ops

    def test_full_outer_to_join_when_both_rejected(self):
        from repro.algebra.expr import Conjunction

        inner = node(FULL_OUTER, rel("R", [1, 2]), rel("S", [1]),
                     eq("R.a", "S.a"))
        both = Conjunction((eq("R.a", "T.a"), eq("S.a", "T.a")))
        tree = node(JOIN, inner, rel("T", [1]), both)
        simplified = simplify_outer_joins(tree)
        ops = [op.op for op in simplified.operators()]
        assert all(op == JOIN for op in ops)

    def test_own_predicate_does_not_simplify_itself(self):
        tree = node(LEFT_OUTER, rel("R", [1, 2]), rel("S", [1]),
                    eq("R.a", "S.a"))
        assert count_outer_joins(simplify_outer_joins(tree)) == 1

    def test_semi_join_predicate_rejects_below(self):
        inner = node(LEFT_OUTER, rel("R", [1, 2]), rel("S", [1]),
                     eq("R.a", "S.a"))
        tree = node(SEMI, inner, rel("T", [1]), eq("S.a", "T.a"))
        assert count_outer_joins(simplify_outer_joins(tree)) == 0

    def test_input_not_modified(self):
        inner = node(LEFT_OUTER, rel("R", [1]), rel("S", [1]),
                     eq("R.a", "S.a"))
        tree = node(JOIN, inner, rel("T", [1]), eq("S.a", "T.a"))
        simplify_outer_joins(tree)
        assert count_outer_joins(tree) == 1


class TestSemanticsPreserved:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_trees_equivalent_after_simplification(self, seed):
        from repro.workloads.random_trees import random_operator_tree

        tree = random_operator_tree(4, seed)
        simplified = simplify_outer_joins(tree)
        assert rows_as_bag(evaluate_tree(tree)) == rows_as_bag(
            evaluate_tree(simplified)
        ), render_tree(simplified)

    def test_simplified_tree_optimizes_to_larger_space(self):
        """Demoting outer joins can only enlarge the reorderable space
        (inner joins are freely reorderable)."""
        inner = node(LEFT_OUTER, rel("R", [1, 2]), rel("S", [1]),
                     eq("R.a", "S.a"))
        tree = node(JOIN, inner, rel("T", [1]), eq("S.a", "T.a"))
        before = optimize_operator_tree(tree).stats.ccp_emitted
        after = optimize_operator_tree(
            simplify_outer_joins(tree)
        ).stats.ccp_emitted
        assert after >= before

"""Tests for incremental cache sync: mutation cursors, deltas, floors.

Covers the PR's cache-layer additions — ``PlanCache.mutations`` /
``sync_since`` / ``snapshot_state`` / ``structure_hot`` — plus the two
consumers with subtle semantics: the autosave change-detection that
must not race ``bump_epoch`` (it keys off the *mutation* counter, not
entry counts) and the ``select_auto`` hot-bucket promotion.
"""

from __future__ import annotations

import pytest

from repro.cache import persist
from repro.cache.keys import structure_bucket
from repro.cache.plan_cache import CacheDelta, PlanCache
from repro.core.hypergraph import Hypergraph
from repro.optimizer import Optimizer, OptimizerConfig, QuerySpec
from repro.registry import select_auto
from repro.serving.sync import DeltaTracker


def chain_spec(n: int = 5, tag: float = 0.0) -> QuerySpec:
    return QuerySpec(
        relations=[(f"r{i}", 100.0 + 10.0 * i + tag) for i in range(n)],
        joins=[(f"r{i}", f"r{i + 1}", 0.1) for i in range(n - 1)],
    )


def warmed_optimizer(n_entries: int) -> Optimizer:
    optimizer = Optimizer(OptimizerConfig(cache="on"))
    optimizer.optimize_many(
        [chain_spec(tag=float(i)) for i in range(n_entries)]
    )
    return optimizer


class TestMutationCounter:
    def test_stores_bump_lookups_do_not(self):
        optimizer = warmed_optimizer(3)
        cache = optimizer.plan_cache
        assert cache.mutations == 3
        optimizer.optimize(chain_spec(tag=0.0))  # a pure hit
        assert cache.mutations == 3

    def test_epoch_bump_is_a_mutation(self):
        cache = warmed_optimizer(1).plan_cache
        before = cache.mutations
        cache.bump_epoch()
        assert cache.mutations == before + 1

    def test_entries_carry_their_mutation_id(self):
        cache = warmed_optimizer(3).plan_cache
        entries, _epoch, mutations = cache.snapshot_state()
        assert mutations == 3
        assert sorted(e.mutation_id for _k, e in entries) == [1, 2, 3]


class TestSyncSince:
    def test_from_zero_ships_everything(self):
        cache = warmed_optimizer(4).plan_cache
        delta = cache.sync_since(0)
        assert isinstance(delta, CacheDelta)
        assert delta.since == 0
        assert delta.now == cache.mutations
        assert len(delta.entries) == 4
        assert not delta.empty

    def test_cursor_filters_older_entries(self):
        optimizer = warmed_optimizer(4)
        cache = optimizer.plan_cache
        cursor = cache.mutations
        optimizer.optimize_many(
            [chain_spec(tag=100.0 + i) for i in range(2)]
        )
        delta = cache.sync_since(cursor)
        assert len(delta.entries) == 2
        assert all(mid > cursor for mid, *_ in delta.entries)

    def test_empty_delta_when_nothing_changed(self):
        cache = warmed_optimizer(2).plan_cache
        delta = cache.sync_since(cache.mutations)
        assert delta.empty
        assert delta.entries == ()

    def test_stale_epoch_entries_are_never_shipped(self):
        cache = warmed_optimizer(3).plan_cache
        cache.bump_epoch()
        delta = cache.sync_since(0)
        # the bump advanced the cursor but stale entries stay home,
        # exactly like the persistence loader drops them
        assert delta.entries == ()
        assert delta.now == cache.mutations
        assert delta.epoch == 1

    def test_persisted_document_records_mutations(self, tmp_path):
        optimizer = warmed_optimizer(2)
        document = persist.dump_document(optimizer.plan_cache)
        assert document["mutations"] == 2
        path = str(tmp_path / "cache.json")
        persist.save_document(document, path)
        assert persist.load(path).mutations == 2


class TestDeltaTracker:
    def test_floor_is_zero_until_all_workers_report(self):
        tracker = DeltaTracker(expected_workers=2)
        assert tracker.floor() == 0
        tracker.record(pid=100, synced_to=7)
        assert tracker.floor() == 0  # the second worker may be cold
        tracker.record(pid=200, synced_to=5)
        assert tracker.floor() == 5

    def test_cursors_are_monotone_per_pid(self):
        tracker = DeltaTracker(expected_workers=1)
        tracker.record(pid=100, synced_to=9)
        tracker.record(pid=100, synced_to=4)  # late reply, ignored
        assert tracker.floor() == 9

    def test_reset_drops_cursors_but_keeps_counters(self):
        tracker = DeltaTracker(expected_workers=1)
        tracker.record(pid=100, synced_to=9)
        tracker.note_shipment(CacheDelta(since=0, now=9, epoch=0, entries=()))
        tracker.reset()
        assert tracker.floor() == 0
        assert tracker.full_syncs == 1

    def test_shipment_counters_split_full_vs_delta(self):
        tracker = DeltaTracker(expected_workers=1)
        entries = ((1, "k", ("recipe",), "s", 1.0),)
        tracker.note_shipment(
            CacheDelta(since=0, now=1, epoch=0, entries=entries)
        )
        tracker.note_shipment(
            CacheDelta(since=1, now=2, epoch=0, entries=entries)
        )
        counters = tracker.counters()
        assert counters["full_syncs"] == 1
        assert counters["delta_syncs"] == 1
        assert counters["delta_entries"] == 2
        assert counters["snapshot_bytes"] == 2 * len(repr(entries))

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            DeltaTracker(expected_workers=0)


class TestAutosaveChangeDetection:
    """Satellite: autosave must not race ``bump_epoch``.

    Both autosave and worker warming key off the same atomic
    ``sync_since`` cursor — a batch that produced no new entries skips
    the write, but *any* mutation (including a bare epoch bump between
    batches) makes the next autosave persist again.
    """

    @pytest.fixture
    def counting_save(self, monkeypatch):
        calls = []
        real = persist.save_document

        def wrapper(document, path):
            calls.append(path)
            return real(document, path)

        monkeypatch.setattr(persist, "save_document", wrapper)
        return calls

    def test_unchanged_batch_skips_the_write(self, tmp_path, counting_save):
        path = str(tmp_path / "cache.json")
        optimizer = Optimizer(OptimizerConfig(cache="on", cache_path=path))
        optimizer.optimize_many([chain_spec()])
        assert len(counting_save) == 1
        optimizer.optimize_many([chain_spec()])  # hits only: no change
        assert len(counting_save) == 1

    def test_epoch_bump_between_batches_is_persisted(
        self, tmp_path, counting_save
    ):
        import json

        path = str(tmp_path / "cache.json")
        optimizer = Optimizer(OptimizerConfig(cache="on", cache_path=path))
        optimizer.optimize_many([chain_spec()])
        with open(path) as handle:
            assert json.load(handle)["epoch"] == 0
        optimizer.plan_cache.bump_epoch()
        # the entry count did not change, only the mutation counter —
        # the next batch (which re-derives the now-stale entry) must
        # notice and write the new epoch, not skip as "unchanged"
        optimizer.optimize_many([chain_spec()])
        assert len(counting_save) == 2
        with open(path) as handle:
            assert json.load(handle)["epoch"] == 1
        # the loader rebases: only the fresh re-derivation survives
        assert len(persist.load(path)) == 1

    def test_explicit_save_resets_the_marker(self, tmp_path, counting_save):
        path = str(tmp_path / "cache.json")
        optimizer = Optimizer(OptimizerConfig(cache="on", cache_path=path))
        optimizer.optimize(chain_spec())
        optimizer.save_cache()
        assert len(counting_save) == 1
        optimizer.optimize_many([chain_spec()])  # nothing new since save
        assert len(counting_save) == 1


class TestHotBucketPromotion:
    """Satellite: ``select_auto`` prefers exact enumeration just above
    ``exact_threshold`` when the structural bucket is hot in cache."""

    @staticmethod
    def chain_graph(n: int) -> Hypergraph:
        graph = Hypergraph(n_nodes=n)
        for i in range(n - 1):
            graph.add_simple_edge(i, i + 1, selectivity=0.1)
        return graph

    def test_cold_bucket_stays_greedy(self):
        graph = self.chain_graph(6)
        info = select_auto(graph, exact_threshold=5, cache=PlanCache())
        assert not info.exact

    def test_hot_bucket_promotes_to_exact(self):
        cache = Optimizer(
            OptimizerConfig(cache="on")
        ).plan_cache
        warm = Optimizer(OptimizerConfig(cache="on"))
        warm._plan_cache = cache
        warm.optimize(chain_spec(n=6))
        graph = self.chain_graph(6)
        assert cache.structure_hot(structure_bucket(graph))
        cold = select_auto(graph, exact_threshold=5)
        hot = select_auto(graph, exact_threshold=5, cache=cache)
        assert not cold.exact
        assert hot.exact

    def test_promotion_respects_the_margin(self):
        warm = Optimizer(OptimizerConfig(cache="on"))
        warm.optimize(chain_spec(n=9))
        cache = warm.plan_cache
        graph = self.chain_graph(9)
        assert cache.structure_hot(structure_bucket(graph))
        # 9 relations sit beyond threshold+margin (5+2): no promotion,
        # however hot the bucket — the amortization argument only
        # holds for borderline sizes
        info = select_auto(graph, exact_threshold=5, cache=cache)
        assert not info.exact

    def test_stale_bucket_does_not_promote(self):
        warm = Optimizer(OptimizerConfig(cache="on"))
        warm.optimize(chain_spec(n=6))
        cache = warm.plan_cache
        cache.bump_epoch()
        graph = self.chain_graph(6)
        assert not cache.structure_hot(structure_bucket(graph))
        info = select_auto(graph, exact_threshold=5, cache=cache)
        assert not info.exact

    def test_served_end_to_end_through_auto(self):
        """The promotion changes real plans: repeated borderline shapes
        get exact enumeration once the bucket is hot."""
        optimizer = Optimizer(
            OptimizerConfig(cache="on", exact_threshold=5)
        )
        first = optimizer.optimize(chain_spec(n=6))
        assert first.algorithm == "greedy"
        # the bucket is now hot; an isomorphic relabeling with fresh
        # statistics is promoted to an exact enumerator
        relabeled = QuerySpec(
            relations=[(f"x{i}", 500.0 + i) for i in range(6)],
            joins=[(f"x{i}", f"x{i + 1}", 0.1) for i in range(5)],
        )
        second = optimizer.optimize(relabeled)
        assert second.algorithm != "greedy"

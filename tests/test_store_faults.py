"""Fault injection against the SQLite plan store.

Every scenario here ends the same way: the store comes back **usable**
— possibly cold, always warned via ``CachePersistenceWarning`` — and
never raises, never loses data past the last committed transaction,
and never serves a stale or mangled key.  The scenarios:

* a writer process SIGKILLed while holding an open ``BEGIN IMMEDIATE``
  transaction with rows already written (WAL rollback on reopen);
* the database file truncated to a fraction of its size;
* torn writes — a slice of the file body overwritten with garbage;
* the file replaced entirely with non-SQLite bytes;
* a full disk, simulated with ``PRAGMA max_page_count``;
* a size budget far too small for the working set.
"""

from __future__ import annotations

import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.cache import (
    CachePersistenceWarning,
    PlanCache,
    PlanStore,
)
from repro.optimizer import Optimizer, OptimizerConfig
from repro.workloads import generators
from repro.workloads.repeated import repeated_workload


def make_cache(entries=3, capacity=16) -> PlanCache:
    cache = PlanCache(capacity)
    for i in range(entries):
        cache.store(
            (1, f"digest-{i}", ("auto", "hyperedges", ("m", "q"), 14)),
            (i, (0, 1)),
            structure=f"bucket-{i % 2}",
            cost=float(i),
        )
    return cache


def seeded_store(path, entries=5) -> None:
    with PlanStore(path) as store:
        assert store.sync_from(make_cache(entries=entries)) == entries


# Committed batch first, then an open BEGIN IMMEDIATE with rows
# already written but never committed; "READY" marks that state, after
# which the process spins until killed.
WRITER_SCRIPT = """
import sqlite3, sys, time
sys.path.insert(0, {src!r})
from repro.cache import PlanCache, PlanStore

path = {path!r}
cache = PlanCache(16)
for i in range(4):
    cache.store(
        (1, f"committed-{{i}}", ("auto", "hyperedges", ("m", "q"), 14)),
        (i, (0, 1)),
    )
store = PlanStore(path)
store.sync_from(cache)

conn = sqlite3.connect(path, isolation_level=None)
conn.execute("BEGIN IMMEDIATE")
conn.execute(
    "INSERT INTO entries"
    " (key, recipe, epoch, structure, cost, size, seq, created_at)"
    " VALUES (?, ?, 1, NULL, NULL, 64, 999, 0.0)",
    (repr((1, "torn", ())), repr((9, (0, 1)))),
)
print("READY", flush=True)
time.sleep(60)
"""


class TestKilledWriter:
    def test_sigkill_mid_transaction_loses_only_the_uncommitted(
        self, tmp_path
    ):
        path = str(tmp_path / "plans.sqlite")
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", WRITER_SCRIPT.format(src=src, path=path)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.strip() == "READY"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()

        # reopen: WAL recovery rolls back the torn transaction
        with PlanStore(path) as store:
            loaded = store.load()
        assert len(loaded) == 4  # the committed batch, nothing less
        for i in range(4):
            entry, status = loaded.probe(
                (1, f"committed-{i}", ("auto", "hyperedges", ("m", "q"), 14))
            )
            assert status == "hit"
            assert entry.recipe == (i, (0, 1))
        gone, status = loaded.probe((1, "torn", ()))
        assert status == "miss"

    def test_store_stays_writable_after_recovery(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", WRITER_SCRIPT.format(src=src, path=path)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()
        with PlanStore(path) as store:
            cache = store.load()
            cache.store((1, "after", ("auto", "hyperedges", ("m", "q"), 14)),
                        (42, (0, 1)))
            assert store.sync_from(cache) == 1
            assert len(store.load()) == 5


class TestCorruptFiles:
    def test_truncated_file_degrades_cold(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        seeded_store(path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 3)
        with pytest.warns(CachePersistenceWarning):
            store = PlanStore(path)
        assert len(store.load()) == 0
        assert store.rebuilds == 1
        # the damaged image is quarantined, not destroyed
        assert os.path.exists(path + ".corrupt")
        assert store.sync_from(make_cache(entries=2)) == 2
        store.close()

    def test_torn_write_degrades_cold_or_recovers(self, tmp_path):
        """Garbage scribbled over the middle of the file."""
        path = str(tmp_path / "plans.sqlite")
        seeded_store(path, entries=8)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size // 2)
            handle.write(b"\xde\xad\xbe\xef" * 256)
        with warnings_or_none():
            store = PlanStore(path)
            loaded = store.load()
        # either quick_check caught it (cold) or the scribble landed in
        # slack space (full recovery) — both fine; a crash or a mangled
        # entry is not
        assert len(loaded) in (0, 8)
        for key, entry in loaded.snapshot_entries():
            assert isinstance(key, tuple) and key[0] == 1
            assert isinstance(entry.recipe, tuple)
        store.close()

    def test_zeroed_header_degrades_cold(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        seeded_store(path)
        with open(path, "r+b") as handle:
            handle.write(b"\x00" * 100)
        with pytest.warns(CachePersistenceWarning):
            store = PlanStore(path)
        assert len(store.load()) == 0
        assert store.sync_from(make_cache(entries=1)) == 1
        store.close()

    def test_non_sqlite_bytes_degrade_cold(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        with open(path, "w") as handle:
            handle.write("this is not a database\n" * 100)
        with pytest.warns(CachePersistenceWarning):
            store = PlanStore(path)
        assert len(store.load()) == 0
        assert store.sync_from(make_cache(entries=3)) == 3
        assert len(store.load()) == 3
        store.close()

    def test_corruption_discovered_mid_session_rebuilds(self, tmp_path):
        """The file goes bad *while* a store handle is open."""
        path = str(tmp_path / "plans.sqlite")
        store = PlanStore(path)
        cache = make_cache(entries=3)
        store.sync_from(cache)
        store._conn.close()  # sever the handle, then smash the file
        with open(path, "r+b") as handle:
            handle.write(b"\x00" * 100)
        store._conn = sqlite3.connect(path)  # reattach to the wreck
        cache.store((1, "next", ("auto", "hyperedges", ("m", "q"), 14)),
                    (7, (0, 1)))
        with pytest.warns(CachePersistenceWarning):
            store.sync_from(cache)
        assert store.rebuilds == 1
        # the rebuilt file accepts the retried delta
        assert store.sync_from(cache, force=True) == 4
        store.close()


class TestTransientErrorsAreNotCorruption:
    """``OperationalError`` subclasses ``DatabaseError``: every handler
    must classify contention/disk-full as transient BEFORE the
    corruption branch, or a routine hiccup quarantines a healthy store
    and loses every persisted plan."""

    def test_locked_compact_does_not_quarantine(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        store = PlanStore(path, busy_timeout=0.05)
        store.sync_from(make_cache(entries=3))
        blocker = sqlite3.connect(path, isolation_level=None)
        blocker.execute("BEGIN IMMEDIATE")  # exactly what a concurrent
        try:                                # process's writer holds
            with pytest.warns(CachePersistenceWarning, match="locked"):
                swept = store.compact()
            assert swept == {"expired": 0, "stale": 0, "evicted": 0}
            assert store.rebuilds == 0
            assert not os.path.exists(path + ".corrupt")
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()
        # the store file is healthy: the sweep just runs next time
        assert store.entry_count() == 3
        assert store.compact() == {"expired": 0, "stale": 0, "evicted": 0}
        store.close()

    def test_transient_load_failure_does_not_quarantine(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "plans.sqlite")
        store = PlanStore(path)
        store.sync_from(make_cache(entries=3))

        def locked(conn, now):
            raise sqlite3.OperationalError("database is locked")

        monkeypatch.setattr(store, "_fresh_rows", locked)
        with pytest.warns(CachePersistenceWarning, match="locked"):
            cold = store.load()
        assert len(cold) == 0
        assert store.rebuilds == 0
        assert not os.path.exists(path + ".corrupt")
        monkeypatch.undo()
        assert len(store.load()) == 3  # nothing was lost
        store.close()

    def test_vacuum_failure_keeps_sweep_counts(self, tmp_path):
        """A failed post-sweep VACUUM must not discard the committed
        sweep's counters, and must never quarantine the store."""
        path = str(tmp_path / "plans.sqlite")
        store = PlanStore(path, ttl=1000.0)
        store.sync_from(make_cache(entries=4))

        real = store._conn

        class VacuumBomb:
            def execute(self, sql, *args):
                if sql == "VACUUM":
                    raise sqlite3.OperationalError("database is locked")
                return real.execute(sql, *args)

            def __getattr__(self, name):
                return getattr(real, name)

        store._conn = VacuumBomb()
        with pytest.warns(CachePersistenceWarning, match="VACUUM"):
            swept = store.compact(now=time.time() + 2000.0, vacuum=True)
        assert swept == {"expired": 4, "stale": 0, "evicted": 0}
        assert store.rows_expired == 4
        assert store.rebuilds == 0
        assert not os.path.exists(path + ".corrupt")
        store._conn = real
        store.close()


class TestDiskPressure:
    def test_full_disk_warns_and_stays_usable(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        store = PlanStore(path)
        cache = make_cache(entries=3, capacity=32)
        store.sync_from(cache)
        # cap the file at its current size, then demand fresh pages
        store._conn.execute("PRAGMA max_page_count=1")
        cache.store(
            (1, "big", ("auto", "hyperedges", ("m", "q"), 14)),
            (9, (0, 1)),
            structure="y" * 262144,
        )
        with pytest.warns(CachePersistenceWarning, match="full|disk"):
            assert store.sync_from(cache) == 0
        assert store.failed_syncs == 1
        # committed state is intact and readable throughout
        # (entry_count, not load(): load attaches the store to the
        # freshly loaded cache, which would reset the pending cursor)
        assert store.entry_count() == 3
        # space returns -> the pending delta lands on the next sync
        store._conn.execute("PRAGMA max_page_count=1073741823")
        assert store.sync_from(cache) == 1
        assert len(store.load()) == 4
        store.close()

    def test_tiny_size_budget_never_raises(self, tmp_path):
        path = str(tmp_path / "plans.sqlite")
        with PlanStore(path, size_budget=200) as store:
            cache = PlanCache(64)
            for i in range(40):
                cache.store(
                    (1, f"burst-{i}", ("auto", "hyperedges", ("m", "q"), 14)),
                    (i, (0, 1)),
                )
                store.sync_from(cache)
            assert store.failed_syncs == 0
            assert store.rows_evicted > 0
            survivors = store.load(capacity=64)
            assert 1 <= len(survivors) < 40

    def test_optimizer_survives_full_disk_autosave(self, tmp_path):
        """End-to-end: autosave hits a full disk; planning continues."""
        path = str(tmp_path / "plans.sqlite")
        config = OptimizerConfig(cache="on", cache_path=path)
        optimizer = Optimizer(config)
        optimizer.optimize_many(
            repeated_workload(generators.chain(4, seed=5), 2)
        )
        store = optimizer._cache_persister.store
        store._conn.execute("PRAGMA max_page_count=1")
        # a bulky pending entry guarantees the flush needs fresh pages
        optimizer.plan_cache.store(
            (1, "bulky", ("auto", "hyperedges", ("m", "q"), 14)),
            (0, (0, 1)),
            structure="z" * 262144,
        )
        with pytest.warns(CachePersistenceWarning):
            results = optimizer.optimize_many(
                repeated_workload(generators.clique(9, seed=6), 2)
            )
        assert all(r.plan is not None for r in results)


class warnings_or_none:
    """Context allowing (but not requiring) CachePersistenceWarning."""

    def __enter__(self):
        import warnings

        self._ctx = warnings.catch_warnings()
        self._ctx.__enter__()
        warnings.simplefilter("ignore", CachePersistenceWarning)
        return self

    def __exit__(self, *exc):
        return self._ctx.__exit__(*exc)

"""Tests for the DPsize baseline (Fig. 1 of the paper)."""

import pytest

from repro.core.dphyp import solve_dphyp
from repro.core.dpsize import solve_dpsize
from repro.core.hypergraph import Hypergraph
from repro.core.plans import JoinPlanBuilder
from repro.core.stats import SearchStats
from repro.workloads import chain, cycle, star
from repro.workloads.hyper import cycle_hypergraph, star_hypergraph
from repro.workloads.random_queries import random_hypergraph_query


def optimum(solver, graph, cards):
    stats = SearchStats()
    plan = solver(graph, JoinPlanBuilder(graph, cards, stats=stats), stats)
    return plan, stats


class TestCorrectness:
    @pytest.mark.parametrize(
        "query_factory",
        [
            lambda: chain(6, seed=1),
            lambda: cycle(6, seed=1),
            lambda: star(5, seed=1),
            lambda: cycle_hypergraph(6, 1, seed=1),
            lambda: star_hypergraph(4, 1, seed=1),
        ],
    )
    def test_matches_dphyp_cost(self, query_factory):
        query = query_factory()
        plan_size, _ = optimum(solve_dpsize, query.graph, query.cardinalities)
        plan_hyp, _ = optimum(solve_dphyp, query.graph, query.cardinalities)
        assert plan_size.cost == pytest.approx(plan_hyp.cost)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_hypergraphs(self, seed):
        query = random_hypergraph_query(6, seed, n_hyperedges=2, n_islands=2)
        plan_size, _ = optimum(solve_dpsize, query.graph, query.cardinalities)
        plan_hyp, _ = optimum(solve_dphyp, query.graph, query.cardinalities)
        assert (plan_size is None) == (plan_hyp is None)
        if plan_size is not None:
            assert plan_size.cost == pytest.approx(plan_hyp.cost)


class TestComplexityCounters:
    def test_considers_more_pairs_than_ccps(self):
        """The (*) tests of Fig. 1 fail far more often than they
        succeed — the core of the paper's complexity argument."""
        query = star(6, seed=1)
        _, stats_size = optimum(solve_dpsize, query.graph, query.cardinalities)
        _, stats_hyp = optimum(solve_dphyp, query.graph, query.cardinalities)
        assert stats_size.pairs_considered > 2 * stats_hyp.ccp_emitted
        # DPsize visits ordered pairs: exactly twice the unordered count
        assert stats_size.ccp_emitted == 2 * stats_hyp.ccp_emitted

    def test_chain_pairs_blow_up(self):
        small = chain(4, seed=0)
        large = chain(8, seed=0)
        _, stats_small = optimum(solve_dpsize, small.graph, small.cardinalities)
        _, stats_large = optimum(solve_dpsize, large.graph, large.cardinalities)
        assert stats_large.pairs_considered > stats_small.pairs_considered


class TestEdgeCases:
    def test_single_relation(self):
        graph = Hypergraph(n_nodes=1)
        plan, _ = optimum(solve_dpsize, graph, [3.0])
        assert plan.is_leaf

    def test_disconnected(self):
        graph = Hypergraph(n_nodes=2)
        plan, _ = optimum(solve_dpsize, graph, [1.0, 2.0])
        assert plan is None

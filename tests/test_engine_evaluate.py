"""Tests for tree evaluation, plan reconstruction, and plan execution."""

import pytest

from repro.algebra.expr import Aggregate, Equals, attr
from repro.algebra.operators import DEPENDENT_JOIN, JOIN, LEFT_OUTER, NEST, SEMI
from repro.algebra.optree import Relation, leaf, node
from repro.algebra.pipeline import optimize_operator_tree
from repro.engine.evaluate import (
    EvaluationError,
    evaluate_plan,
    evaluate_tree,
    plan_to_tree,
)
from repro.engine.table import base_relation, rows_as_bag, table_function


def eq(a, b, sel=0.5):
    return Equals(attr(a), attr(b), selectivity=sel)


@pytest.fixture
def customers():
    return base_relation(
        "C", ["id", "city"],
        [(1, "berlin"), (2, "mannheim"), (3, "berlin")],
    )


@pytest.fixture
def orders():
    return base_relation(
        "O", ["cust", "total"],
        [(1, 50), (1, 75), (3, 20)],
    )


class TestEvaluateTree:
    def test_simple_join(self, customers, orders):
        tree = node(JOIN, leaf(customers), leaf(orders), eq("C.id", "O.cust"))
        rows = evaluate_tree(tree)
        assert len(rows) == 3
        assert {row["O.total"] for row in rows} == {50, 75, 20}

    def test_left_outer_pads(self, customers, orders):
        tree = node(LEFT_OUTER, leaf(customers), leaf(orders),
                    eq("C.id", "O.cust"))
        rows = evaluate_tree(tree)
        assert len(rows) == 4
        unmatched = [row for row in rows if row["C.id"] == 2]
        assert unmatched[0]["O.total"] is None

    def test_nest_aggregates(self, customers, orders):
        tree = node(
            NEST, leaf(customers), leaf(orders), eq("C.id", "O.cust"),
            aggregates=(Aggregate("G.order_count", fn=len),),
        )
        rows = evaluate_tree(tree)
        counts = {row["C.id"]: row["G.order_count"] for row in rows}
        assert counts == {1: 2, 2: 0, 3: 1}

    def test_dependent_join_with_table_function(self, customers):
        series = table_function(
            "F", ["n"], free_tables=["C"],
            fn=lambda ctx: [(i,) for i in range(ctx["C.id"])],
        )
        from repro.algebra.expr import FunctionPredicate

        always = FunctionPredicate(fn=lambda row: True,
                                   over=frozenset({"C", "F"}))
        tree = node(DEPENDENT_JOIN, leaf(customers), leaf(series), always)
        rows = evaluate_tree(tree)
        # customer ids 1,2,3 yield 1+2+3 = 6 rows
        assert len(rows) == 6

    def test_missing_rows_raise(self):
        bare = Relation(name="X", cardinality=5.0)
        with pytest.raises(EvaluationError):
            evaluate_tree(leaf(bare))


class TestPlanRoundTrip:
    def test_plan_to_tree_rebuilds_operators(self, customers, orders):
        tree = node(SEMI, leaf(customers), leaf(orders), eq("C.id", "O.cust"))
        result = optimize_operator_tree(tree)
        rebuilt = plan_to_tree(result.plan, result.compiled.analysis.relations)
        assert rebuilt.op.base_kind == "semi"

    def test_optimized_plan_same_rows(self, customers, orders):
        tree = node(
            JOIN,
            node(LEFT_OUTER, leaf(customers), leaf(orders),
                 eq("C.id", "O.cust")),
            leaf(base_relation("N", ["city"], [("berlin",), ("paris",)])),
            eq("C.city", "N.city"),
        )
        expected = rows_as_bag(evaluate_tree(tree))
        result = optimize_operator_tree(tree)
        got = rows_as_bag(
            evaluate_plan(result.plan, result.compiled.analysis.relations)
        )
        assert expected == got

    def test_plan_without_payload_rejected(self, fig2_graph):
        from repro import optimize

        result = optimize(fig2_graph, [1.0] * 6)
        with pytest.raises(EvaluationError):
            plan_to_tree(result.plan, [None] * 6)

"""Tests for the workload generators."""

import pytest

from repro.core import bitset
from repro.core.hypergraph import Hyperedge
from repro.workloads import (
    SHAPES,
    chain,
    clique,
    cycle,
    cycle_hypergraph,
    grid,
    max_splits,
    random_hypergraph_query,
    random_simple_query,
    split_schedule,
    star,
    star_hypergraph,
)


class TestClassicShapes:
    def test_chain(self):
        query = chain(5)
        assert query.n_relations == 5
        assert len(query.graph.edges) == 4
        assert query.graph.is_connected

    def test_cycle(self):
        query = cycle(5)
        assert len(query.graph.edges) == 5
        assert query.graph.is_connected

    def test_star_hub_is_node_zero(self):
        query = star(4)
        assert query.n_relations == 5
        for edge in query.graph.edges:
            assert edge.left == bitset.singleton(0) or edge.right == (
                bitset.singleton(0)
            )

    def test_clique_edge_count(self):
        query = clique(5)
        assert len(query.graph.edges) == 10

    def test_grid(self):
        query = grid(2, 3)
        assert query.n_relations == 6
        assert len(query.graph.edges) == 2 * 2 + 3  # horizontal + vertical
        assert query.graph.is_connected

    def test_fixed_cardinalities(self):
        query = chain(3, cardinalities=[1, 2, 3])
        assert query.cardinalities == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            chain(3, cardinalities=[1])

    def test_deterministic_by_seed(self):
        a, b = chain(5, seed=9), chain(5, seed=9)
        assert a.cardinalities == b.cardinalities

    def test_shape_registry(self):
        assert set(SHAPES) == {"chain", "cycle", "star", "clique"}

    def test_input_validation(self):
        with pytest.raises(ValueError):
            cycle(2)
        with pytest.raises(ValueError):
            star(0)
        with pytest.raises(ValueError):
            clique(1)
        with pytest.raises(ValueError):
            grid(0, 2)


class TestSplitSchedule:
    """The paper's exact derivation G0 -> G3 for the 8-cycle."""

    def make_initial(self):
        return Hyperedge(
            left=bitset.from_iterable(range(4)),
            right=bitset.from_iterable(range(4, 8)),
        )

    def test_g0(self):
        edges = split_schedule(self.make_initial(), 0)
        assert len(edges) == 1

    def test_g1_crossed_halves(self):
        edges = split_schedule(self.make_initial(), 1)
        assert len(edges) == 2
        sides = {(e.left, e.right) for e in edges}
        # paper: ({R0,R1},{R6,R7}) and ({R2,R3},{R4,R5})
        assert (bitset.set_of(0, 1), bitset.set_of(6, 7)) in sides
        assert (bitset.set_of(2, 3), bitset.set_of(4, 5)) in sides

    def test_g2_splits_first_edge_aligned(self):
        edges = split_schedule(self.make_initial(), 2)
        assert len(edges) == 3
        sides = {(e.left, e.right) for e in edges}
        # paper: ({R0},{R6}) and ({R1},{R7})
        assert (bitset.singleton(0), bitset.singleton(6)) in sides
        assert (bitset.singleton(1), bitset.singleton(7)) in sides

    def test_g3_all_simple(self):
        edges = split_schedule(self.make_initial(), 3)
        assert len(edges) == 4
        assert all(edge.is_simple for edge in edges)

    def test_extra_splits_are_noops(self):
        assert len(split_schedule(self.make_initial(), 10)) == 4

    def test_max_splits(self):
        assert max_splits(4) == 3  # 8-cycle: splits 0..3 (paper)
        assert max_splits(8) == 7  # 16-cycle: splits 0..7 (paper)
        assert max_splits(2) == 1  # 4-cycle: splits 0..1 (paper)
        assert max_splits(1) == 0


class TestHypergraphFamilies:
    @pytest.mark.parametrize("splits", range(4))
    def test_cycle_hypergraph(self, splits):
        query = cycle_hypergraph(8, splits)
        assert query.graph.is_connected
        assert len(query.graph.edges) == 8 + 1 + splits
        assert query.meta["splits"] == splits

    @pytest.mark.parametrize("splits", range(4))
    def test_star_hypergraph(self, splits):
        query = star_hypergraph(8, splits)
        assert query.n_relations == 9
        assert query.graph.is_connected
        assert len(query.graph.edges) == 8 + 1 + splits

    def test_validation(self):
        with pytest.raises(ValueError):
            cycle_hypergraph(7, 0)  # odd
        with pytest.raises(ValueError):
            cycle_hypergraph(8, 9)  # too many splits
        with pytest.raises(ValueError):
            star_hypergraph(3, 0)  # odd satellites


class TestRandomQueries:
    @pytest.mark.parametrize("seed", range(5))
    def test_simple_graphs_connected(self, seed):
        query = random_simple_query(8, seed)
        assert query.graph.is_simple
        assert query.graph.is_connected

    @pytest.mark.parametrize("seed", range(5))
    def test_hypergraphs_connected_and_plannable(self, seed):
        from repro import optimize

        query = random_hypergraph_query(
            6, seed, n_hyperedges=3, n_islands=2, flex_probability=0.3
        )
        assert query.graph.is_connected
        result = optimize(query.graph, query.cardinalities)
        assert result.plan is not None

    def test_reproducible(self):
        a = random_hypergraph_query(6, 42)
        b = random_hypergraph_query(6, 42)
        assert a.cardinalities == b.cardinalities
        assert len(a.graph.edges) == len(b.graph.edges)

"""Tests for engine tables, schemas, and bag comparison."""

import pytest

from repro.algebra.expr import Aggregate, Equals, attr
from repro.algebra.operators import JOIN, NEST, SEMI
from repro.algebra.optree import leaf, node
from repro.engine.table import (
    base_relation,
    make_rows,
    rows_as_bag,
    schemas_from_tree,
    table_function,
    visible_schema,
)


class TestMakeRows:
    def test_qualifies_attributes(self):
        rows = make_rows("R", ["a", "b"], [(1, 2), (3, 4)])
        assert rows == [{"R.a": 1, "R.b": 2}, {"R.a": 3, "R.b": 4}]

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            make_rows("R", ["a"], [(1, 2)])


class TestRelations:
    def test_base_relation(self):
        relation = base_relation("R", ["a"], [(1,), (2,)])
        assert relation.cardinality == 2.0
        assert relation.attributes == ("a",)
        assert relation.generator({}) == [{"R.a": 1}, {"R.a": 2}]
        assert not relation.is_table_function

    def test_base_relation_rows_are_copies(self):
        relation = base_relation("R", ["a"], [(1,)])
        rows = relation.generator({})
        rows.append({"R.a": 99})
        assert len(relation.generator({})) == 1

    def test_table_function(self):
        fn = table_function(
            "F", ["n"], free_tables=["R"],
            fn=lambda ctx: [(ctx["R.a"] * 2,)],
        )
        assert fn.is_table_function
        assert fn.generator({"R.a": 21}) == [{"F.n": 42}]


class TestSchemas:
    def _tree(self):
        r = base_relation("R", ["a"], [(1,)])
        s = base_relation("S", ["b"], [(1,)])
        return node(SEMI, leaf(r), leaf(s), Equals(attr("R.a"), attr("S.b")))

    def test_schemas_from_tree(self):
        schemas = schemas_from_tree(self._tree())
        assert schemas == {"R": ["a"], "S": ["b"]}

    def test_visible_schema_hides_semi_right(self):
        tree = self._tree()
        schemas = schemas_from_tree(tree)
        assert visible_schema(tree, schemas) == {"R.a"}

    def test_visible_schema_includes_nest_aggregates(self):
        r = base_relation("R", ["a"], [(1,)])
        s = base_relation("S", ["b"], [(1,)])
        tree = node(NEST, leaf(r), leaf(s), Equals(attr("R.a"), attr("S.b")),
                    aggregates=(Aggregate("G.cnt", len),))
        schemas = schemas_from_tree(tree)
        assert visible_schema(tree, schemas) == {"R.a", "G.cnt"}

    def test_visible_schema_join_keeps_all(self):
        r = base_relation("R", ["a"], [(1,)])
        s = base_relation("S", ["b"], [(1,)])
        tree = node(JOIN, leaf(r), leaf(s), Equals(attr("R.a"), attr("S.b")))
        schemas = schemas_from_tree(tree)
        assert visible_schema(tree, schemas) == {"R.a", "S.b"}


class TestRowsAsBag:
    def test_order_insensitive(self):
        a = [{"x": 1}, {"x": 2}]
        b = [{"x": 2}, {"x": 1}]
        assert rows_as_bag(a) == rows_as_bag(b)

    def test_multiplicity_sensitive(self):
        assert rows_as_bag([{"x": 1}]) != rows_as_bag([{"x": 1}, {"x": 1}])

    def test_handles_nulls(self):
        rows = [{"x": None, "y": 1}, {"x": 3, "y": None}]
        bag = rows_as_bag(rows)
        assert len(bag) == 2

"""Tests for the reference operator semantics (Section 5.1)."""

import pytest

from repro.algebra.expr import Aggregate, Equals, attr
from repro.algebra.operators import (
    ANTI,
    DEPENDENT_JOIN,
    FULL_OUTER,
    JOIN,
    LEFT_OUTER,
    NEST,
    SEMI,
)
from repro.engine.joins import apply_operator

LEFT = [
    {"R.a": 1, "R.b": 10},
    {"R.a": 2, "R.b": 20},
    {"R.a": 3, "R.b": 30},
]
RIGHT = [
    {"S.a": 1, "S.c": 100},
    {"S.a": 1, "S.c": 101},
    {"S.a": 2, "S.c": 200},
    {"S.a": 9, "S.c": 900},
]
PRED = Equals(attr("R.a"), attr("S.a"))
RIGHT_SCHEMA = ["S.a", "S.c"]
LEFT_SCHEMA = ["R.a", "R.b"]


def run(op, left=LEFT, right=RIGHT, predicate=PRED, aggregates=()):
    return apply_operator(
        op, left, lambda _ctx: list(right), predicate, aggregates,
        right_schema=RIGHT_SCHEMA, left_schema=LEFT_SCHEMA,
    )


class TestInnerJoin:
    def test_matches(self):
        out = run(JOIN)
        assert len(out) == 3  # (1,100),(1,101),(2,200)
        assert {row["S.c"] for row in out} == {100, 101, 200}

    def test_empty_left(self):
        assert run(JOIN, left=[]) == []

    def test_empty_right(self):
        assert run(JOIN, right=[]) == []


class TestLeftOuter:
    def test_unmatched_left_padded(self):
        out = run(LEFT_OUTER)
        assert len(out) == 4
        padded = [row for row in out if row["R.a"] == 3]
        assert padded == [{"R.a": 3, "R.b": 30, "S.a": None, "S.c": None}]

    def test_all_unmatched(self):
        out = run(LEFT_OUTER, right=[])
        assert len(out) == 3
        assert all(row["S.a"] is None for row in out)


class TestFullOuter:
    def test_both_sides_padded(self):
        out = run(FULL_OUTER)
        # 3 matches + 1 unmatched left (a=3) + 1 unmatched right (a=9)
        assert len(out) == 5
        left_padded = [row for row in out if row.get("R.a") is None]
        assert len(left_padded) == 1
        assert left_padded[0]["S.a"] == 9
        assert left_padded[0]["R.b"] is None

    def test_empty_left_keeps_right(self):
        out = run(FULL_OUTER, left=[])
        assert len(out) == len(RIGHT)
        assert all(row["R.a"] is None for row in out)


class TestSemiAnti:
    def test_semi_no_duplicates(self):
        out = run(SEMI)
        # R.a=1 matches twice but emits once
        assert out == [{"R.a": 1, "R.b": 10}, {"R.a": 2, "R.b": 20}]
        assert all("S.a" not in row for row in out)

    def test_anti_complement(self):
        out = run(ANTI)
        assert out == [{"R.a": 3, "R.b": 30}]

    def test_semi_plus_anti_partition_left(self):
        semi = run(SEMI)
        anti = run(ANTI)
        assert len(semi) + len(anti) == len(LEFT)


class TestNest:
    def test_counts_and_sums(self):
        aggregates = (
            Aggregate("G.cnt", fn=len),
            Aggregate("G.sum", fn=lambda rows: sum(r["S.c"] for r in rows)),
        )
        out = run(NEST, aggregates=aggregates)
        assert len(out) == len(LEFT)  # one row per left tuple
        by_a = {row["R.a"]: row for row in out}
        assert by_a[1]["G.cnt"] == 2 and by_a[1]["G.sum"] == 201
        assert by_a[3]["G.cnt"] == 0 and by_a[3]["G.sum"] == 0


class TestDependent:
    def test_right_provider_sees_left_row(self):
        """d-join: S(r) is re-evaluated per left tuple."""
        def provider(left_row):
            return [{"S.a": left_row["R.a"], "S.c": left_row["R.a"] * 10}]

        out = apply_operator(
            DEPENDENT_JOIN, LEFT, provider, PRED, (),
            right_schema=RIGHT_SCHEMA, left_schema=LEFT_SCHEMA,
        )
        assert len(out) == 3
        assert all(row["S.c"] == row["R.a"] * 10 for row in out)

    def test_non_dependent_provider_called_once(self):
        calls = []

        def provider(ctx):
            calls.append(ctx)
            return list(RIGHT)

        apply_operator(
            JOIN, LEFT, provider, PRED, (),
            right_schema=RIGHT_SCHEMA, left_schema=LEFT_SCHEMA,
        )
        assert len(calls) == 1

"""Tests for the operator-aware plan builder (Sections 5.4–5.6)."""

import pytest

from repro.algebra.expr import Equals, attr
from repro.algebra.hyperedges import compile_tree
from repro.algebra.operators import (
    DEPENDENT_SEMI,
    JOIN,
    LEFT_OUTER,
    SEMI,
)
from repro.algebra.optree import Relation, leaf, node
from repro.algebra.pipeline import optimize_operator_tree
from repro.algebra.reorder import OperatorPlanBuilder
from repro.core import bitset


def rel(name, card=10.0, **kwargs):
    return leaf(Relation(name=name, cardinality=card, **kwargs))


def eq(a, b, sel=0.1):
    return Equals(attr(a), attr(b), selectivity=sel)


class TestOperatorRecovery:
    def test_non_commutative_orientation_enforced(self):
        tree = node(LEFT_OUTER, rel("R"), rel("S"), eq("R.a", "S.a"))
        compiled = compile_tree(tree)
        builder = OperatorPlanBuilder(compiled)
        p_r, p_s = builder.leaf(0), builder.leaf(1)
        edges = compiled.graph.edges
        forward = builder.join_ordered(p_r, p_s, edges)
        backward = builder.join_ordered(p_s, p_r, edges)
        assert len(forward) == 1
        assert forward[0].operator == LEFT_OUTER
        assert backward == []  # S leftouter R is not the same query

    def test_commutative_join_builds_both(self):
        tree = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        compiled = compile_tree(tree)
        builder = OperatorPlanBuilder(compiled)
        plans = builder.join_unordered(
            builder.leaf(0), builder.leaf(1), compiled.graph.edges
        )
        assert len(plans) == 2

    def test_mixed_edges_rejected(self):
        """A non-inner edge must not merge with extra predicates."""
        tree = node(LEFT_OUTER, rel("R"), rel("S"), eq("R.a", "S.a"))
        compiled = compile_tree(tree)
        builder = OperatorPlanBuilder(compiled)
        fake_inner = compile_tree(
            node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        ).graph.edges[0]
        plans = builder.join_ordered(
            builder.leaf(0), builder.leaf(1),
            list(compiled.graph.edges) + [fake_inner],
        )
        assert plans == []


class TestDependentSwitch:
    def _compiled_djoin(self):
        func = rel("F", card=5.0, free_tables=frozenset({"R"}))
        tree = node(DEPENDENT_SEMI, rel("R"), func, eq("R.a", "F.a"))
        return compile_tree(tree)

    def test_free_right_side_becomes_dependent(self):
        compiled = self._compiled_djoin()
        builder = OperatorPlanBuilder(compiled)
        p_r, p_f = builder.leaf(0), builder.leaf(1)
        (plan,) = builder.join_ordered(p_r, p_f, compiled.graph.edges)
        assert plan.operator == DEPENDENT_SEMI
        assert plan.free_tables == 0  # resolved

    def test_free_left_side_invalid(self):
        compiled = self._compiled_djoin()
        builder = OperatorPlanBuilder(compiled)
        p_r, p_f = builder.leaf(0), builder.leaf(1)
        assert builder.join_ordered(p_f, p_r, compiled.graph.edges) == []

    def test_leaf_free_tables(self):
        compiled = self._compiled_djoin()
        builder = OperatorPlanBuilder(compiled)
        assert builder.leaf(1).free_tables == bitset.singleton(0)


class TestPipeline:
    def test_initial_tree_always_reachable(self):
        """The optimized cost can never exceed the initial tree's own
        cost — the initial tree is inside the explored space."""
        from repro.cost.models import CoutModel
        from repro.engine.table import base_relation

        tree = node(
            SEMI,
            node(JOIN, rel("R", 100), rel("S", 50), eq("R.a", "S.a")),
            rel("T", 20),
            eq("R.a", "T.a"),
        )
        result = optimize_operator_tree(tree)
        assert result.plan is not None
        # cost of the literal initial tree under the same estimator:
        compiled = result.compiled
        builder = OperatorPlanBuilder(compiled, CoutModel())
        p_rs = builder.join_ordered(
            builder.leaf(0), builder.leaf(1), [compiled.graph.edges[0]]
        )[0]
        p_initial = builder.join_ordered(
            p_rs, builder.leaf(2), [compiled.graph.edges[1]]
        )[0]
        assert result.cost <= p_initial.cost + 1e-9

    def test_rejects_unknown_mode(self):
        tree = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        with pytest.raises(ValueError, match="mode"):
            optimize_operator_tree(tree, mode="quantum")

    def test_rejects_unknown_algorithm(self):
        tree = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        with pytest.raises(ValueError, match="algorithm"):
            optimize_operator_tree(tree, algorithm="magic")

    def test_result_exposes_relation_names(self):
        tree = node(JOIN, rel("R"), rel("S"), eq("R.a", "S.a"))
        result = optimize_operator_tree(tree)
        assert result.relation_names == ["R", "S"]
        assert result.mode == "hyperedges"

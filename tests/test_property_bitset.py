"""Property-based tests for the bitset primitives (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitset

node_sets = st.integers(min_value=0, max_value=2 ** 20 - 1)
nonempty_sets = st.integers(min_value=1, max_value=2 ** 20 - 1)
small_sets = st.integers(min_value=1, max_value=2 ** 12 - 1)


class TestSetAlgebra:
    @given(s=node_sets)
    def test_iter_round_trip(self, s):
        assert bitset.from_iterable(bitset.iter_nodes(s)) == s

    @given(s=node_sets)
    def test_count_matches_iteration(self, s):
        assert bitset.count(s) == len(list(bitset.iter_nodes(s)))

    @given(s=nonempty_sets)
    def test_min_consistency(self, s):
        assert bitset.min_bit(s) == bitset.singleton(bitset.min_node(s))
        assert bitset.min_node(s) == min(bitset.iter_nodes(s))
        assert bitset.max_node(s) == max(bitset.iter_nodes(s))

    @given(s=nonempty_sets)
    def test_without_min(self, s):
        assert bitset.without_min(s) == s & ~bitset.min_bit(s)

    @given(a=node_sets, b=node_sets)
    def test_subset_definition(self, a, b):
        assert bitset.is_subset(a, b) == set(bitset.iter_nodes(a)).issubset(
            bitset.iter_nodes(b)
        )

    @given(a=node_sets, b=node_sets)
    def test_disjoint_definition(self, a, b):
        assert bitset.is_disjoint(a, b) == (
            not set(bitset.iter_nodes(a)) & set(bitset.iter_nodes(b))
        )


class TestSubsetEnumeration:
    @given(s=small_sets)
    def test_complete_and_unique(self, s):
        subs = list(bitset.subsets(s))
        assert len(subs) == 2 ** bitset.count(s) - 1
        assert len(set(subs)) == len(subs)
        assert all(bitset.is_subset(sub, s) and sub for sub in subs)

    @given(s=small_sets)
    def test_increasing_order(self, s):
        subs = list(bitset.subsets(s))
        assert subs == sorted(subs)

    @given(s=small_sets)
    def test_descending_matches_ascending(self, s):
        assert sorted(bitset.subsets_descending(s)) == list(bitset.subsets(s))

    @given(s=small_sets)
    def test_proper_excludes_self(self, s):
        assert set(bitset.proper_subsets(s)) == set(bitset.subsets(s)) - {s}


class TestOrderedIteration:
    @given(s=node_sets)
    def test_descending_is_reverse_of_ascending(self, s):
        assert list(bitset.iter_nodes_descending(s)) == list(
            reversed(list(bitset.iter_nodes(s)))
        )

    @given(v=st.integers(min_value=0, max_value=30))
    def test_below(self, v):
        assert bitset.below(v) == bitset.from_iterable(range(v + 1))
        assert bitset.strictly_below(v) == bitset.from_iterable(range(v))

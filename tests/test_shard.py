"""Fingerprint sharding: routing stability, disjointness, dead shards.

Routing-only tests use endpoints that are never connected to
(:meth:`~repro.serving.shard.ShardRouter.shard_for` is pure); the
integration tests run real two-daemon fleets.
"""

from __future__ import annotations

import pytest

from repro.optimizer import OptimizerConfig, QuerySpec
from repro.serving import BackgroundServer, ServerError, ShardRouter


def spec(i: int, k: int = 0) -> QuerySpec:
    width = 3 + (k or (i % 5))
    return QuerySpec(
        relations=[(f"s{i}_{j}", 80.0 + 10.0 * j + i) for j in range(width)],
        joins=[(f"s{i}_{j}", f"s{i}_{j + 1}", 0.1) for j in range(width - 1)],
    )


FAKE = [("10.0.0.1", 7411), ("10.0.0.2", 7411), ("10.0.0.3", 7411)]


class TestRouting:
    def test_routing_is_deterministic(self):
        router = ShardRouter(FAKE)
        for i in range(10):
            assert router.shard_for(spec(i)) == router.shard_for(spec(i))

    def test_isomorphic_queries_share_a_shard(self):
        """Routing is by structural fingerprint, so relabelings land on
        the same shard (and therefore share one cached recipe)."""
        router = ShardRouter(FAKE)
        original = QuerySpec(
            relations=[(f"a{j}", 100.0 + 10.0 * j) for j in range(4)],
            joins=[(f"a{j}", f"a{j + 1}", 0.1) for j in range(3)],
        )
        relabeled = QuerySpec(
            relations=[(f"z{j}", 100.0 + 10.0 * j) for j in range(4)],
            joins=[(f"z{j}", f"z{j + 1}", 0.1) for j in range(3)],
        )
        assert router.shard_for(original) == router.shard_for(relabeled)

    def test_rendezvous_spreads_load(self):
        router = ShardRouter(FAKE)
        homes = {router.shard_for(spec(i)) for i in range(40)}
        assert len(homes) > 1

    def test_removing_an_endpoint_only_moves_its_keys(self):
        """The rendezvous property: queries homed on a surviving
        endpoint keep their shard when another endpoint leaves the
        configuration."""
        full = ShardRouter(FAKE)
        reduced = ShardRouter(FAKE[:2])
        for i in range(40):
            home = full.shard_for(spec(i))
            if home < 2:  # not on the removed endpoint
                assert reduced.shard_for(spec(i)) == home

    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            ShardRouter([])
        with pytest.raises(ValueError):
            ShardRouter([("h", 1), ("h", 1)])


class TestFleet:
    @pytest.fixture
    def fleet(self):
        daemons = [
            BackgroundServer(OptimizerConfig(cache="on")).start()
            for _ in range(2)
        ]
        try:
            yield daemons
        finally:
            for daemon in daemons:
                daemon.stop()

    def test_cache_populations_stay_disjoint(self, fleet):
        """The whole point of sharding: each structure lives on exactly
        one daemon, so the shard caches never overlap."""
        with ShardRouter([d.address for d in fleet]) as router:
            queries = [spec(i) for i in range(12)]
            answers = router.optimize_many(queries, depth=4)
            assert all(a["ok"] for a in answers)
            populations = [
                set(s["structures"]) for s in router.stats() if s
            ]
            assert len(populations) == 2
            assert populations[0].isdisjoint(populations[1])
            counters = router.counters()
            assert sum(counters["routed"]) == len(queries)
            assert counters["fallbacks"] == 0

    def test_repeat_batch_hits_the_home_shards(self, fleet):
        with ShardRouter([d.address for d in fleet]) as router:
            queries = [spec(i) for i in range(8)]
            router.optimize_many(queries, depth=4)
            again = router.optimize_many(queries, depth=4)
            assert all(a["cache_event"] == "hit" for a in again)

    def test_dead_shard_falls_back_to_local_compute(self, fleet):
        with ShardRouter([d.address for d in fleet]) as router:
            queries = [spec(i) for i in range(10)]
            baseline = router.optimize_many(queries, depth=4)
            victim = router.shard_for(queries[0])
            fleet[victim].stop()
            answers = [router.optimize(q) for q in queries]
            assert all(a["ok"] for a in answers)
            assert victim in router.dead_shards
            assert router.counters()["fallbacks"] > 0
            # fallback computes the same plan the dead shard served
            for before, after in zip(baseline, answers):
                if after.get("via") == "fallback":
                    assert after["cost"] == pytest.approx(before["cost"])
            # the surviving shard keeps serving over its live client
            survivor_queries = [
                q for q in queries
                if router.shard_for(q) != victim
            ]
            if survivor_queries:
                served = router.optimize(survivor_queries[0])
                assert served.get("via") in ("parent", "pool")

    def test_application_errors_do_not_kill_the_shard(self, fleet):
        disconnected = QuerySpec(
            relations=[("a", 1.0), ("b", 2.0), ("c", 3.0)],
            joins=[("a", "b", 0.1)],
        )
        with ShardRouter([d.address for d in fleet]) as router:
            with pytest.raises(ServerError):
                router.optimize(disconnected)
            assert router.dead_shards == []
            assert router.optimize(spec(1))["ok"]

    def test_single_shard_fleet_serves_everything(self, fleet):
        with ShardRouter([fleet[0].address]) as router:
            queries = [spec(i) for i in range(6)]
            answers = router.optimize_many(queries, depth=4)
            assert all(a["ok"] for a in answers)
            assert router.counters()["routed"] == [len(queries)]

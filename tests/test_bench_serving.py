"""Tests for the ``python -m repro.bench serving`` benchmark."""

from __future__ import annotations

import pytest

from repro.bench.serving import (
    SCHEMA_VERSION,
    build_pipeline_workload,
    build_workload,
    render_summary,
    run_delta_sync_phase,
    run_pipeline_phase,
    run_serving_phase,
    validate_result,
)


class TestWorkloadShape:
    def test_every_wave_contains_a_miss(self):
        workload = build_workload(clients=6, requests=9)
        for wave_index in range(9):
            wave = [workload[c][wave_index] for c in range(6)]
            # staggering: at least one client is on a cold slot
            hot_names = {"hub", "c0", "r0"}
            assert any(
                spec.relation_names[0] not in hot_names or True
                for spec in wave
            )
            cold = [
                spec for c, spec in enumerate(wave)
                if (wave_index + c) % 3 == 0
            ]
            assert cold

    def test_cold_requests_are_unique(self):
        workload = build_workload(clients=3, requests=6)
        cold_cards = [
            tuple(spec.cardinalities)
            for c, sequence in enumerate(workload)
            for i, spec in enumerate(sequence)
            if (i + c) % 3 == 0
        ]
        assert len(set(cold_cards)) == len(cold_cards)


class TestPipelineWorkload:
    def test_duplicates_trail_their_originals(self):
        stream = build_pipeline_workload(groups=3)
        assert len(stream) == 24
        for group in range(3):
            window = stream[8 * group:8 * group + 8]
            # second half of each window repeats the first half
            for j in range(4):
                assert window[4 + j] is window[j]

    def test_groups_are_distinct(self):
        stream = build_pipeline_workload(groups=4)
        cards = {tuple(spec.cardinalities) for spec in stream}
        assert len(cards) == 16  # 4 groups x 4 unique colds


class TestPipelinePhase:
    def test_tiny_run_produces_a_valid_section(self):
        phase = run_pipeline_phase(
            depth=4, groups=2, warm_entries=5,
            require_tier_hits=False,  # too few requests to force the race
        )
        assert phase["n_requests"] == 16
        assert phase["depth"] == 4
        assert phase["serial_qps"] > 0
        assert phase["pipelined_qps"] > 0
        assert phase["speedup"] > 0
        assert phase["pipelined_p99_ms"] >= phase["pipelined_p50_ms"] > 0
        assert phase["tier"]["tier_hits"] >= 0
        assert phase["server"]["pipelined"] == 16


class TestDeltaSyncPhase:
    def test_ships_exactly_the_added_entries(self):
        phase = run_delta_sync_phase(warm_entries=12, added_entries=7)
        assert phase["delta_entries"] == 7
        assert phase["full_entries"] == 19
        assert phase["delta_bytes"] < phase["full_bytes"]
        assert 0.0 < phase["bytes_ratio"] < 1.0


class TestServingPhase:
    def test_tiny_run_produces_a_valid_document(self):
        serving = run_serving_phase(
            clients=2, requests=3, warm_entries=5
        )
        assert serving["n_requests"] == 6
        assert serving["daemon_qps"] > 0
        assert serving["baseline_qps"] > 0
        assert serving["p99_ms"] >= serving["p50_ms"] > 0
        assert serving["daemon_server"]["served_pool"] >= 1
        document = {
            "schema_version": SCHEMA_VERSION,
            "label": "tiny",
            "python": "3",
            "serving": serving,
            "pipeline": run_pipeline_phase(
                depth=2, groups=1, warm_entries=5,
                require_tier_hits=False,
            ),
            "delta_sync": run_delta_sync_phase(
                warm_entries=6, added_entries=4
            ),
        }
        validate_result(document)
        summary = render_summary(document)
        assert "resident daemon" in summary
        assert "delta re-sync" in summary


class TestValidation:
    def _minimal(self):
        return {
            "schema_version": SCHEMA_VERSION,
            "label": "",
            "python": "3",
            "serving": {
                key: 1 for key in (
                    "clients", "requests_per_client", "n_requests",
                    "daemon_qps", "baseline_qps", "speedup", "p50_ms",
                    "p99_ms", "daemon_sync",
                )
            },
            "pipeline": {
                key: 1 for key in (
                    "depth", "n_requests", "workers", "serial_qps",
                    "pipelined_qps", "speedup", "serial_p50_ms",
                    "serial_p99_ms", "pipelined_p50_ms",
                    "pipelined_p99_ms", "tier",
                )
            },
            "delta_sync": {
                key: 1 for key in (
                    "warm_entries", "added_entries", "delta_entries",
                    "delta_bytes", "full_entries", "full_bytes",
                    "bytes_ratio",
                )
            },
        }

    def test_minimal_document_passes(self):
        validate_result(self._minimal())

    def test_missing_top_level_key_rejected(self):
        document = self._minimal()
        del document["delta_sync"]
        with pytest.raises(ValueError, match="delta_sync"):
            validate_result(document)

    def test_missing_serving_key_rejected(self):
        document = self._minimal()
        del document["serving"]["speedup"]
        with pytest.raises(ValueError, match="speedup"):
            validate_result(document)

    def test_wrong_schema_version_rejected(self):
        document = self._minimal()
        document["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_result(document)

"""Property-based end-to-end validation of Section 5 (hypothesis).

The strongest test in the repository: random *valid* initial operator
trees over random small tables are optimized and then **executed**; the
optimized plan must produce exactly the same bag of rows as the initial
tree, for every operator mix, with and without dependent table
functions, in both the eager-hyperedge and the generate-and-test TES
modes, and for all enumeration algorithms.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.pipeline import optimize_operator_tree
from repro.engine.evaluate import evaluate_plan, evaluate_tree
from repro.engine.table import rows_as_bag
from repro.workloads.random_trees import random_operator_tree

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30
)


@st.composite
def operator_trees(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    tf_prob = draw(st.sampled_from([0.0, 0.25]))
    return random_operator_tree(
        n, seed, table_function_probability=tf_prob
    )


class TestReorderingPreservesSemantics:
    @given(tree=operator_trees())
    @settings(**COMMON)
    def test_hyperedge_mode(self, tree):
        expected = rows_as_bag(evaluate_tree(tree))
        result = optimize_operator_tree(tree)
        assert result.plan is not None
        got = rows_as_bag(
            evaluate_plan(result.plan, result.compiled.analysis.relations)
        )
        assert got == expected

    @given(tree=operator_trees())
    @settings(**COMMON)
    def test_tes_filter_mode(self, tree):
        expected = rows_as_bag(evaluate_tree(tree))
        result = optimize_operator_tree(tree, mode="tes-filter")
        assert result.plan is not None
        got = rows_as_bag(
            evaluate_plan(result.plan, result.compiled.analysis.relations)
        )
        assert got == expected

    @given(tree=operator_trees(), algorithm=st.sampled_from(
        ["dpsize", "dpsub", "topdown"]))
    @settings(**COMMON)
    def test_baseline_algorithms(self, tree, algorithm):
        expected = rows_as_bag(evaluate_tree(tree))
        result = optimize_operator_tree(tree, algorithm=algorithm)
        assert result.plan is not None
        got = rows_as_bag(
            evaluate_plan(result.plan, result.compiled.analysis.relations)
        )
        assert got == expected


class TestModeAgreement:
    @given(tree=operator_trees())
    @settings(**COMMON)
    def test_both_modes_same_optimum(self, tree):
        """The generate-and-test TES mode explores the same valid space
        as the eager hyperedge mode — only slower."""
        eager = optimize_operator_tree(tree, mode="hyperedges")
        lazy = optimize_operator_tree(tree, mode="tes-filter")
        assert lazy.cost == pytest.approx(eager.cost)

    @given(tree=operator_trees())
    @settings(**COMMON)
    def test_all_algorithms_same_optimum(self, tree):
        reference = optimize_operator_tree(tree).cost
        for algorithm in ("dpsize", "dpsub", "topdown"):
            cost = optimize_operator_tree(tree, algorithm=algorithm).cost
            assert cost == pytest.approx(reference), algorithm

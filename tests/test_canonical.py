"""Tests for the canonical-form layer (repro.core.canonical +
Hypergraph.canonical_fingerprint / canonical_form)."""

import random

import pytest

from repro.core import bitset
from repro.core.canonical import CanonicalForm, canonical_form
from repro.core.hypergraph import Hyperedge, Hypergraph, payload_token
from repro.workloads import generators
from repro.workloads.repeated import relabeled


def shuffled_edges(graph: Hypergraph, seed: int) -> Hypergraph:
    """Same graph, edges appended in a different order."""
    edges = list(graph.edges)
    random.Random(seed).shuffle(edges)
    return Hypergraph(
        n_nodes=graph.n_nodes, edges=edges, node_names=graph.node_names
    )


def swapped_sides(graph: Hypergraph) -> Hypergraph:
    """Same graph with every edge's left/right sides exchanged."""
    edges = [
        Hyperedge(
            left=edge.right,
            right=edge.left,
            flex=edge.flex,
            selectivity=edge.selectivity,
            payload=edge.payload,
        )
        for edge in graph.edges
    ]
    return Hypergraph(
        n_nodes=graph.n_nodes, edges=edges, node_names=graph.node_names
    )


SHAPES = {
    "chain": generators.chain(7, seed=1),
    "cycle": generators.cycle(7, seed=2),
    "star": generators.star(6, seed=3),
    "clique": generators.clique(5, seed=4),
    "grid": generators.grid(2, 3, seed=5),
}


class TestOrderInsensitivity:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("include_names", [False, True])
    def test_edge_order_does_not_matter(self, shape, include_names):
        graph = SHAPES[shape].graph
        reordered = shuffled_edges(graph, seed=9)
        assert graph.canonical_fingerprint(include_names) == \
            reordered.canonical_fingerprint(include_names)

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("include_names", [False, True])
    def test_side_swap_does_not_matter(self, shape, include_names):
        graph = SHAPES[shape].graph
        assert graph.canonical_fingerprint(include_names) == \
            swapped_sides(graph).canonical_fingerprint(include_names)


class TestIsomorphismSharing:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_relabeled_copy_shares_fingerprint(self, shape):
        query = SHAPES[shape]
        copy = relabeled(query, seed=17)
        assert query.graph.canonical_fingerprint() == \
            copy.graph.canonical_fingerprint()

    def test_names_do_not_affect_anonymous_mode(self):
        bare = generators.chain(5, seed=1).graph
        named = Hypergraph(
            n_nodes=bare.n_nodes,
            edges=list(bare.edges),
            node_names=[f"T{i}" for i in range(bare.n_nodes)],
        )
        assert bare.canonical_fingerprint() == named.canonical_fingerprint()
        assert bare.canonical_fingerprint(include_names=True) != \
            named.canonical_fingerprint(include_names=True)

    def test_different_shapes_differ(self):
        chain4 = generators.chain(4, seed=0).graph
        star3 = generators.star(3, seed=0).graph   # also 4 nodes, 3 edges
        assert chain4.canonical_fingerprint() != \
            star3.canonical_fingerprint()

    def test_cycle_differs_from_path(self):
        cycle = generators.cycle(5, seed=0).graph
        path = generators.chain(5, seed=0).graph
        assert cycle.canonical_fingerprint() != path.canonical_fingerprint()

    def test_payload_is_structural(self):
        plain = Hypergraph(n_nodes=2)
        plain.add_simple_edge(0, 1)
        annotated = Hypergraph(n_nodes=2)
        annotated.add_simple_edge(0, 1, payload="a.x = b.y")
        assert plain.canonical_fingerprint() != \
            annotated.canonical_fingerprint()


class TestAnnotatedForms:
    def test_permutation_aligns_annotations(self):
        query = generators.cycle(8, seed=6)
        copy = relabeled(query, seed=23)

        def form(q):
            return q.graph.canonical_form(
                node_colors=q.cardinalities,
                edge_colors=[e.selectivity for e in q.graph.edges],
            )

        original, mirrored = form(query), form(copy)
        assert original.digest == mirrored.digest
        assert original.canonical and mirrored.canonical
        # cardinalities agree in canonical order
        canonical_cards = [
            query.cardinalities[original.inverse[rank]]
            for rank in range(8)
        ]
        mirrored_cards = [
            copy.cardinalities[mirrored.inverse[rank]] for rank in range(8)
        ]
        assert canonical_cards == mirrored_cards

    def test_different_stats_different_digest(self):
        query = generators.chain(5, seed=6)
        one = query.graph.canonical_form(node_colors=query.cardinalities)
        other = query.graph.canonical_form(
            node_colors=[c * 2 for c in query.cardinalities]
        )
        assert one.digest != other.digest

    def test_uniform_clique_budget_fallback(self):
        graph = Hypergraph(n_nodes=9)
        for i in range(9):
            for j in range(i + 1, 9):
                graph.add_simple_edge(i, j, selectivity=0.1)
        form = graph.canonical_form(
            node_colors=[10.0] * 9, budget=50
        )
        assert isinstance(form, CanonicalForm)
        assert not form.canonical
        assert form.permutation == tuple(range(9))
        # deterministic: same input, same digest
        again = graph.canonical_form(node_colors=[10.0] * 9, budget=50)
        assert form.digest == again.digest

    def test_distinct_colors_avoid_fallback_on_clique(self):
        query = generators.clique(7, seed=8)
        form = query.graph.canonical_form(
            node_colors=query.cardinalities,
            edge_colors=[e.selectivity for e in query.graph.edges],
        )
        assert form.canonical

    def test_inverse_roundtrip(self):
        form = SHAPES["grid"].graph.canonical_form()
        n = len(form.permutation)
        assert sorted(form.permutation) == list(range(n))
        assert all(
            form.permutation[form.inverse[rank]] == rank for rank in range(n)
        )


class TestLowLevelApi:
    def test_validates_color_lengths(self):
        with pytest.raises(ValueError, match="node color"):
            canonical_form(3, [], node_colors=[1.0])
        with pytest.raises(ValueError, match="edge color"):
            canonical_form(2, [(1, 2, 0)], edge_colors=[0.1, 0.2])

    def test_complex_hyperedges_participate(self):
        # ({0,1} -- {2}) vs two simple edges: different structures
        complex_graph = Hypergraph(n_nodes=3, edges=[
            Hyperedge(left=bitset.set_of(0, 1), right=bitset.set_of(2)),
            Hyperedge(left=bitset.set_of(0), right=bitset.set_of(1)),
        ])
        simple_graph = Hypergraph(n_nodes=3)
        simple_graph.add_simple_edge(0, 1)
        simple_graph.add_simple_edge(1, 2)
        assert complex_graph.canonical_fingerprint() != \
            simple_graph.canonical_fingerprint()

    def test_flex_nodes_participate(self):
        with_flex = Hypergraph(n_nodes=3, edges=[
            Hyperedge(
                left=bitset.set_of(0), right=bitset.set_of(1),
                flex=bitset.set_of(2),
            ),
            Hyperedge(left=bitset.set_of(1), right=bitset.set_of(2)),
        ])
        without_flex = Hypergraph(n_nodes=3, edges=[
            Hyperedge(left=bitset.set_of(0), right=bitset.set_of(1)),
            Hyperedge(left=bitset.set_of(1), right=bitset.set_of(2)),
        ])
        assert with_flex.canonical_fingerprint() != \
            without_flex.canonical_fingerprint()

    def test_payload_token_stability(self):
        assert payload_token(None) is None
        assert payload_token("p") == "str:p"
        assert payload_token("p") == payload_token("p")
        assert payload_token(1) != payload_token("1")


class TestBitsetPermute:
    def test_permute_roundtrip(self):
        perm = [2, 0, 3, 1]
        inverse = [0] * 4
        for old, new in enumerate(perm):
            inverse[new] = old
        s = bitset.set_of(0, 2)
        assert bitset.permute(bitset.permute(s, perm), inverse) == s

    def test_permute_identity(self):
        s = bitset.set_of(1, 3, 4)
        assert bitset.permute(s, list(range(5))) == s

    def test_permute_empty(self):
        assert bitset.permute(0, [1, 0]) == 0

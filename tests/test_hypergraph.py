"""Unit tests for hypergraphs and (generalized) hyperedges."""

import pytest

from repro.core import bitset
from repro.core.hypergraph import Hyperedge, Hypergraph, simple_edge


class TestHyperedge:
    def test_simple_edge_helper(self):
        edge = simple_edge(0, 3, selectivity=0.5)
        assert edge.left == 0b1
        assert edge.right == 0b1000
        assert edge.is_simple
        assert edge.selectivity == 0.5

    def test_hyperedge_not_simple(self):
        edge = Hyperedge(left=bitset.set_of(0, 1), right=bitset.set_of(2))
        assert not edge.is_simple

    def test_flex_makes_edge_generalized(self):
        edge = Hyperedge(left=0b1, right=0b10, flex=0b100)
        assert not edge.is_simple
        assert edge.nodes == 0b111

    def test_rejects_empty_side(self):
        with pytest.raises(ValueError):
            Hyperedge(left=0, right=0b1)
        with pytest.raises(ValueError):
            Hyperedge(left=0b1, right=0)

    def test_rejects_overlapping_sides(self):
        with pytest.raises(ValueError):
            Hyperedge(left=0b11, right=0b10)

    def test_rejects_flex_overlap(self):
        with pytest.raises(ValueError):
            Hyperedge(left=0b1, right=0b10, flex=0b10)

    def test_rejects_negative_selectivity(self):
        with pytest.raises(ValueError):
            Hyperedge(left=0b1, right=0b10, selectivity=-0.1)

    def test_connects_plain(self):
        edge = Hyperedge(left=bitset.set_of(0, 1), right=bitset.set_of(3))
        assert edge.connects(bitset.set_of(0, 1, 2), bitset.set_of(3, 4))
        assert edge.connects(bitset.set_of(3, 4), bitset.set_of(0, 1, 2))
        # u split across both sides: not connecting
        assert not edge.connects(bitset.set_of(0, 2), bitset.set_of(1, 3))

    def test_connects_generalized_definition7(self):
        # (u={0}, v={1}, w={2}): flex node must be covered by the union
        edge = Hyperedge(left=0b1, right=0b10, flex=0b100)
        assert edge.connects(bitset.set_of(0), bitset.set_of(1, 2))
        assert edge.connects(bitset.set_of(0, 2), bitset.set_of(1))
        assert not edge.connects(bitset.set_of(0), bitset.set_of(1))

    def test_spans(self):
        edge = Hyperedge(left=0b1, right=0b10, flex=0b100)
        assert edge.spans(0b111)
        assert not edge.spans(0b011)

    def test_render(self):
        edge = Hyperedge(left=0b1, right=0b10, flex=0b100)
        text = edge.render()
        assert "R0" in text and "R1" in text and "flex" in text


class TestHypergraphBasics:
    def test_requires_positive_nodes(self):
        with pytest.raises(ValueError):
            Hypergraph(n_nodes=0)

    def test_rejects_edge_outside_universe(self):
        graph = Hypergraph(n_nodes=2)
        with pytest.raises(ValueError):
            graph.add_simple_edge(0, 5)

    def test_node_names_length_checked(self):
        with pytest.raises(ValueError):
            Hypergraph(n_nodes=2, node_names=["only-one"])

    def test_is_simple(self, fig2_graph, triangle_graph):
        assert triangle_graph.is_simple
        assert not fig2_graph.is_simple

    def test_edges_within(self, fig2_graph):
        inner = fig2_graph.edges_within(bitset.set_of(0, 1, 2))
        assert len(inner) == 2  # the two chain edges on that side

    def test_connecting_edges(self, fig2_graph):
        edges = fig2_graph.connecting_edges(
            bitset.set_of(0, 1, 2), bitset.set_of(3, 4, 5)
        )
        assert len(edges) == 1
        assert not edges[0].is_simple

    def test_has_connecting_edge_false_for_unrelated(self, fig2_graph):
        # {R1} and {R4}: hyperedge needs the full hypernodes
        assert not fig2_graph.has_connecting_edge(
            bitset.singleton(0), bitset.singleton(3)
        )


class TestEdgeIndexFastPaths:
    """The lazy per-node index must agree with a full connects() scan."""

    def _brute_connecting(self, graph, s1, s2):
        return [edge for edge in graph.edges if edge.connects(s1, s2)]

    def test_matches_brute_force_on_fig2(self, fig2_graph):
        universe = fig2_graph.all_nodes
        for s1 in bitset.subsets(universe):
            s2 = universe & ~s1
            if s2 == 0:
                continue
            expected = self._brute_connecting(fig2_graph, s1, s2)
            assert fig2_graph.connecting_edges(s1, s2) == expected
            assert fig2_graph.has_connecting_edge(s1, s2) == bool(expected)

    def test_preserves_edge_list_order(self):
        graph = Hypergraph(n_nodes=4)
        graph.add_simple_edge(0, 2, selectivity=0.1)
        graph.add_simple_edge(1, 3, selectivity=0.2)
        graph.add_simple_edge(0, 3, selectivity=0.3)
        edges = graph.connecting_edges(bitset.set_of(0, 1), bitset.set_of(2, 3))
        assert [edge.selectivity for edge in edges] == [0.1, 0.2, 0.3]

    def test_index_invalidated_by_add_edge(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        s1, s2 = bitset.singleton(1), bitset.singleton(2)
        assert not graph.has_connecting_edge(s1, s2)  # builds the index
        graph.add_simple_edge(1, 2)
        assert graph.has_connecting_edge(s1, s2)
        assert len(graph.connecting_edges(s1, s2)) == 1

    def test_index_invalidated_by_direct_append(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        assert graph.connecting_edges(0b10, 0b100) == []
        graph.edges.append(simple_edge(1, 2))
        assert len(graph.connecting_edges(0b10, 0b100)) == 1

    def test_generalized_edges_still_scanned(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_edge(Hyperedge(left=0b1, right=0b10, flex=0b100))
        assert graph.has_connecting_edge(bitset.set_of(0, 2), 0b10)
        assert not graph.has_connecting_edge(0b1, 0b10)  # flex uncovered


class TestConnectivity:
    def test_fig2_connected(self, fig2_graph):
        assert fig2_graph.is_connected

    def test_singleton_connected(self, fig2_graph):
        assert fig2_graph.is_connected_set(bitset.singleton(2))

    def test_side_connected(self, fig2_graph):
        assert fig2_graph.is_connected_set(bitset.set_of(3, 4, 5))

    def test_disconnected_subset(self, fig2_graph):
        assert not fig2_graph.is_connected_set(bitset.set_of(0, 2))
        assert not fig2_graph.is_connected_set(bitset.set_of(2, 3))

    def test_empty_set_not_connected(self, fig2_graph):
        assert not fig2_graph.is_connected_set(0)

    def test_connected_components(self):
        graph = Hypergraph(n_nodes=4)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(2, 3)
        components = graph.connected_components()
        assert components == [bitset.set_of(0, 1), bitset.set_of(2, 3)]

    def test_make_connected_adds_cross_edges(self):
        graph = Hypergraph(n_nodes=4)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(2, 3)
        connected = graph.make_connected()
        assert connected.is_connected
        added = connected.edges[len(graph.edges):]
        assert len(added) == 1
        assert added[0].selectivity == 1.0  # cross product in disguise

    def test_make_connected_noop_when_connected(self, fig2_graph):
        assert fig2_graph.make_connected() is fig2_graph


class TestRendering:
    def test_name_of_default(self, fig2_graph):
        assert fig2_graph.name_of(0) == "R0"

    def test_render_mentions_all_edges(self, fig2_graph):
        text = fig2_graph.render()
        assert text.count("--") == len(fig2_graph.edges)


class TestEdgesWithinIndexed:
    """The indexed ``edges_within`` must agree with the definitional
    full-scan on arbitrary graphs (hot-path audit of PR 3)."""

    def brute_force(self, graph, s):
        return [edge for edge in graph.edges if edge.spans(s)]

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scan_on_random_hypergraphs(self, seed):
        from repro.workloads.random_queries import random_hypergraph_query

        query = random_hypergraph_query(7, seed=seed)
        graph = query.graph
        for s in range(1 << graph.n_nodes):
            assert graph.edges_within(s) == self.brute_force(graph, s), s

    def test_empty_set(self, fig2_graph):
        assert fig2_graph.edges_within(0) == []

    def test_full_set_preserves_edge_order(self, fig2_graph):
        assert fig2_graph.edges_within(fig2_graph.all_nodes) == \
            fig2_graph.edges

    def test_index_invalidated_by_add_edge(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        assert len(graph.edges_within(0b011)) == 1
        graph.add_simple_edge(1, 2)
        assert len(graph.edges_within(0b111)) == 2

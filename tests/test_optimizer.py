"""Tests for the unified Optimizer facade: config, QuerySpec, results,
auto dispatch wiring, and backward compatibility of the legacy wrappers."""

import json

import pytest

from repro import (
    CapabilityError,
    DisconnectedGraphError,
    Hyperedge,
    Hypergraph,
    JoinSpec,
    Optimizer,
    OptimizerConfig,
    QuerySpec,
    optimize,
)
from repro.algebra import optimize_operator_tree
from repro.core import bitset
from repro.cost.models import HashJoinModel
from repro.workloads import generators
from repro.workloads.nonreorderable import (
    cycle_outerjoin_tree,
    star_antijoin_tree,
)

HYPERGRAPH_FIXTURES = {
    "chain": generators.chain(6, seed=1),
    "cycle": generators.cycle(6, seed=2),
    "star": generators.star(5, seed=3),
}

TREE_FIXTURES = {
    "star-antijoin": star_antijoin_tree(5, 2, seed=7),
    "cycle-outerjoin": cycle_outerjoin_tree(6, 2, seed=7),
}


class TestLegacyParity:
    """Acceptance criterion: the facade returns the same plan cost as
    the legacy entry points for every algorithm on the fixtures."""

    @pytest.mark.parametrize("shape", sorted(HYPERGRAPH_FIXTURES))
    @pytest.mark.parametrize(
        "algorithm",
        ["dphyp", "dphyp-recursive", "dpccp", "dpsize", "dpsub",
         "topdown", "greedy"],
    )
    def test_hypergraph_costs_match(self, shape, algorithm):
        query = HYPERGRAPH_FIXTURES[shape]
        legacy = optimize(query.graph, query.cardinalities, algorithm)
        unified = Optimizer(
            OptimizerConfig(algorithm=algorithm)
        ).optimize(query.graph, query.cardinalities)
        assert unified.cost == legacy.cost
        assert unified.algorithm == algorithm
        assert unified.stats.ccp_emitted == legacy.stats.ccp_emitted

    @pytest.mark.parametrize("name", sorted(TREE_FIXTURES))
    @pytest.mark.parametrize("algorithm", ["dphyp", "dpsize", "topdown"])
    def test_operator_tree_costs_match(self, name, algorithm):
        tree = TREE_FIXTURES[name]
        legacy = optimize_operator_tree(tree, algorithm=algorithm)
        unified = Optimizer(
            OptimizerConfig(algorithm=algorithm)
        ).optimize(tree)
        assert unified.cost == legacy.cost
        assert unified.compiled is not None
        assert unified.mode == "hyperedges"

    def test_tes_filter_mode_matches(self):
        tree = TREE_FIXTURES["star-antijoin"]
        legacy = optimize_operator_tree(tree, mode="tes-filter")
        unified = Optimizer(
            OptimizerConfig(algorithm="dphyp", mode="tes-filter")
        ).optimize(tree)
        assert unified.cost == legacy.cost
        assert unified.mode == "tes-filter"

    def test_auto_matches_dphyp_optimum(self):
        query = HYPERGRAPH_FIXTURES["cycle"]
        exact = optimize(query.graph, query.cardinalities, "dphyp")
        auto = Optimizer().optimize(query.graph, query.cardinalities)
        assert auto.cost == exact.cost
        assert auto.requested_algorithm == "auto"
        assert auto.algorithm != "auto"


class TestConfig:
    def test_kwargs_shorthand(self):
        opt = Optimizer(algorithm="dpsize")
        assert opt.config.algorithm == "dpsize"

    def test_config_plus_overrides(self):
        base = OptimizerConfig(algorithm="dphyp", exact_threshold=9)
        opt = Optimizer(base, algorithm="greedy")
        assert opt.config.algorithm == "greedy"
        assert opt.config.exact_threshold == 9

    def test_unknown_algorithm_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            OptimizerConfig(algorithm="magic")

    def test_invalid_mode_and_policy(self):
        with pytest.raises(ValueError, match="mode"):
            OptimizerConfig(mode="bogus")
        with pytest.raises(ValueError, match="on_disconnected"):
            OptimizerConfig(on_disconnected="explode")

    def test_cost_model_flows_through(self):
        query = HYPERGRAPH_FIXTURES["chain"]
        cout = Optimizer(algorithm="dphyp").optimize(query)
        hashj = Optimizer(
            algorithm="dphyp", cost_model=HashJoinModel()
        ).optimize(query)
        assert cout.cost != hashj.cost

    def test_knob_shortcut_defers_to_replaced_dphyp_registration(self):
        from repro import AlgorithmInfo, get_algorithm, register_algorithm

        calls = []
        original = get_algorithm("dphyp")

        def probe_solver(graph, builder, stats):
            calls.append(graph)
            return original.solver(graph, builder, stats)

        register_algorithm(AlgorithmInfo(name="dphyp", solver=probe_solver),
                           replace=True)
        try:
            Optimizer(
                algorithm="dphyp", memoize_neighborhoods=False
            ).optimize(HYPERGRAPH_FIXTURES["chain"])
        finally:
            register_algorithm(original, replace=True)
        assert calls, "replacement solver must win over the knob shortcut"

    def test_dphyp_knobs_are_correctness_neutral(self):
        query = HYPERGRAPH_FIXTURES["star"]
        default = Optimizer(algorithm="dphyp").optimize(query)
        plain = Optimizer(
            algorithm="dphyp",
            memoize_neighborhoods=False,
            minimize_neighborhoods=False,
        ).optimize(query)
        assert plain.cost == default.cost
        assert plain.stats.neighborhood_cache_hits == 0


class TestQuerySpec:
    def spec(self):
        return QuerySpec(
            relations=[("a", 100.0), ("b", 500.0), ("c", 40.0)],
            joins=[
                ("a", "b", 0.01),
                JoinSpec.of("b", "c", selectivity=0.1,
                            predicate="b.x = c.x"),
            ],
        )

    def test_roundtrip(self):
        spec = self.spec()
        graph, cards = spec.to_hypergraph()
        assert graph.node_names == ["a", "b", "c"]
        assert cards == [100.0, 500.0, 40.0]
        back = QuerySpec.from_hypergraph(graph, cards)
        assert back.relation_names == spec.relation_names
        assert back.cardinalities == spec.cardinalities
        assert [(j.left, j.right, j.selectivity) for j in back.joins] == [
            (j.left, j.right, j.selectivity) for j in spec.joins
        ]
        assert back.joins[1].predicate == "b.x = c.x"
        # and the round-tripped spec compiles to the same problem
        graph2, cards2 = back.to_hypergraph()
        assert cards2 == cards
        assert len(graph2.edges) == len(graph.edges)

    def test_matches_handbuilt_hypergraph(self):
        spec = self.spec()
        graph, cards = spec.to_hypergraph()
        via_spec = Optimizer(algorithm="dphyp").optimize(spec)
        via_graph = Optimizer(algorithm="dphyp").optimize(graph, cards)
        assert via_spec.cost == via_graph.cost
        assert via_spec.relation_names == ["a", "b", "c"]

    def test_complex_join_groups(self):
        spec = QuerySpec(
            relations={"r1": 10, "r2": 20, "r3": 30, "r4": 40},
            joins=[
                ("r1", "r2", 0.1),
                ("r3", "r4", 0.1),
                {"left": ["r1", "r2"], "right": ["r3", "r4"],
                 "selectivity": 0.01},
            ],
        )
        graph, _cards = spec.to_hypergraph()
        assert not graph.is_simple
        result = Optimizer().optimize(spec)
        assert result.algorithm == "dphyp"  # complex edge rules out dpccp

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one relation"):
            QuerySpec(relations={})
        with pytest.raises(ValueError, match="unique"):
            QuerySpec(relations=[("a", 1.0), ("a", 2.0)])
        with pytest.raises(ValueError, match="unknown relation"):
            QuerySpec(relations={"a": 1.0, "b": 1.0},
                      joins=[("a", "zzz")]).to_hypergraph()
        with pytest.raises(ValueError, match="join spec"):
            JoinSpec.parse(42)

    def test_spec_rejects_extra_arguments(self):
        with pytest.raises(ValueError, match="carries its own"):
            Optimizer().optimize(self.spec(), cardinalities=[1.0, 2.0, 3.0])


class TestOptimizeMany:
    def test_preserves_input_order(self):
        queries = [
            generators.chain(4, seed=4),
            generators.star(3, seed=5),
            generators.cycle(5, seed=6),
        ]
        opt = Optimizer(algorithm="dphyp")
        results = opt.optimize_many(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert result.cost == opt.optimize(query).cost
            assert result.graph is query.graph

    def test_accepts_mixed_representations(self):
        spec = QuerySpec(relations={"a": 10, "b": 10}, joins=[("a", "b")])
        batch = [generators.chain(3), spec, TREE_FIXTURES["star-antijoin"]]
        results = Optimizer().optimize_many(batch)
        assert [r.plan is not None for r in results] == [True, True, True]
        assert results[2].compiled is not None

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="cannot optimize"):
            Optimizer().optimize(42)


class TestResult:
    def test_to_dict_schema_and_json(self):
        query = HYPERGRAPH_FIXTURES["chain"]
        result = Optimizer().optimize(query)
        document = result.to_dict()
        for key in ("algorithm", "requested_algorithm", "mode",
                    "relation_names", "plannable", "cost", "cardinality",
                    "plan", "stats"):
            assert key in document, key
        assert document["plannable"] is True
        assert document["requested_algorithm"] == "auto"
        assert document["stats"]["ccp_emitted"] > 0
        node = document["plan"]
        while "operator" in node:
            assert set(node) == {"operator", "predicates", "cardinality",
                                 "cost", "left", "right"}
            node = node["left"]
        assert set(node) == {"relation", "cardinality"}
        json.dumps(document)  # must be JSON-serializable end to end

    def test_explain_needs_no_manual_names(self):
        spec = QuerySpec(
            relations={"customer": 1000, "orders": 100},
            joins=[JoinSpec.of("customer", "orders", 0.01,
                               predicate="c.id = o.cust_id")],
        )
        result = Optimizer().optimize(spec)
        text = result.explain()
        assert "scan customer" in text
        assert "scan orders" in text
        # satellite fix: plain-hypergraph payloads render as predicates
        assert "c.id = o.cust_id" in text
        assert "c.id = o.cust_id" in result.explain_dot()

    def test_tree_to_dict_renders_predicates_like_explain(self):
        result = Optimizer().optimize(TREE_FIXTURES["star-antijoin"])
        document = result.to_dict()
        json.dumps(document)

        def predicates(node, found):
            if "operator" in node:
                found.extend(node["predicates"])
                predicates(node["left"], found)
                predicates(node["right"], found)
            return found

        rendered = predicates(document["plan"], [])
        assert rendered, "tree plan should carry predicate annotations"
        for text in rendered:
            assert "EdgeInfo(" not in text  # structured, not a dataclass repr
            assert text in result.explain()

    def test_tree_result_carries_names(self):
        result = Optimizer().optimize(TREE_FIXTURES["star-antijoin"])
        names = result.relation_names
        assert names and all(isinstance(n, str) for n in names)
        assert result.explain()  # no names argument needed

    def test_unplannable_result_raises_with_message(self):
        graph = Hypergraph(n_nodes=2)
        result = optimize(graph, [1.0, 1.0])  # legacy: plan=None
        for attribute in ("cost", "cardinality"):
            with pytest.raises(ValueError, match="no cross-product-free"):
                getattr(result, attribute)
        with pytest.raises(ValueError, match="no cross-product-free"):
            result.explain()
        document = result.to_dict()
        assert document["plannable"] is False
        assert document["cost"] is None
        json.dumps(document)


class TestDisconnectedPolicy:
    def graph(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1, selectivity=0.5)
        return graph  # node 2 is stranded

    def test_default_raises(self):
        with pytest.raises(DisconnectedGraphError, match="2 connected"):
            Optimizer().optimize(self.graph(), [4.0, 2.0, 3.0])

    def test_connect_policy(self):
        result = Optimizer(on_disconnected="connect").optimize(
            self.graph(), [4.0, 2.0, 3.0]
        )
        # cross product with selectivity 1: 4 * 2 * 0.5 * 3
        assert result.cardinality == pytest.approx(12.0)

    def test_plan_none_policy_matches_legacy(self):
        result = Optimizer(on_disconnected="plan-none").optimize(
            self.graph(), [4.0, 2.0, 3.0]
        )
        assert result.plan is None
        legacy = optimize(self.graph(), [4.0, 2.0, 3.0])
        assert legacy.plan is None


class TestCapabilityGate:
    def complex_graph(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_edge(Hyperedge(left=bitset.set_of(0, 1),
                                 right=bitset.set_of(2)))
        return graph

    def test_dpccp_rejected_before_enumeration(self):
        with pytest.raises(CapabilityError, match="simple graphs"):
            Optimizer(algorithm="dpccp").optimize(self.complex_graph())

    def test_legacy_wrapper_gets_the_same_friendly_error(self):
        with pytest.raises(CapabilityError, match="complex hyperedges"):
            optimize(self.complex_graph(), [1.0, 1.0, 1.0], "dpccp")

    def test_auto_avoids_dpccp_here(self):
        result = Optimizer().optimize(self.complex_graph())
        assert result.algorithm == "dphyp"

"""Tests for cost models, catalog, and cardinality estimation."""

import math

import pytest

from repro.core.hypergraph import Hyperedge, Hypergraph
from repro.core.plans import Plan
from repro.cost.cardinality import (
    SetCardinalityEstimator,
    inner_join_cardinality,
    operator_cardinality,
)
from repro.cost.catalog import Catalog, catalog_from_cardinalities
from repro.cost.models import (
    MODELS,
    CoutModel,
    HashJoinModel,
    MinOfModel,
    NestedLoopModel,
    SortMergeModel,
)


def plan_stub(cost, card):
    return Plan(
        nodes=0b1, left=None, right=None, operator=None, edges=(),
        cardinality=card, cost=cost,
    )


class TestCostModels:
    def test_cout(self):
        model = CoutModel()
        assert model.leaf_cost(100.0) == 0.0
        assert model.join_cost(
            "join", plan_stub(5, 10), plan_stub(7, 20), 42.0
        ) == pytest.approx(5 + 7 + 42)

    def test_nested_loop(self):
        model = NestedLoopModel()
        assert model.join_cost(
            "join", plan_stub(0, 10), plan_stub(0, 20), 5.0
        ) == pytest.approx(200.0)

    def test_hash_join_asymmetric(self):
        model = HashJoinModel(build_factor=2.0)
        small_build = model.join_cost("join", plan_stub(0, 10), plan_stub(0, 1000), 5.0)
        big_build = model.join_cost("join", plan_stub(0, 1000), plan_stub(0, 10), 5.0)
        assert small_build < big_build

    def test_hash_join_validates_factor(self):
        with pytest.raises(ValueError):
            HashJoinModel(build_factor=0.0)

    def test_sort_merge_nlogn(self):
        model = SortMergeModel()
        cost = model.join_cost("join", plan_stub(0, 8), plan_stub(0, 1), 0.0)
        assert cost == pytest.approx(8 * math.log2(8) + 1)

    def test_min_of_model(self):
        model = MinOfModel()
        left, right = plan_stub(0, 10), plan_stub(0, 20)
        component_costs = [
            m.join_cost("join", left, right, 5.0) for m in model.models
        ]
        assert model.join_cost("join", left, right, 5.0) == min(component_costs)

    def test_min_of_requires_components(self):
        with pytest.raises(ValueError):
            MinOfModel(models=[])

    def test_registry(self):
        assert set(MODELS) == {"C_out", "C_nlj", "C_hj", "C_smj"}


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add("orders", 1500.0, {"o_custkey": 100.0})
        assert "orders" in catalog
        assert catalog.get("orders").cardinality == 1500.0
        assert catalog.get("orders").distinct("o_custkey") == 100.0
        # missing statistics default to the cardinality
        assert catalog.get("orders").distinct("o_comment") == 1500.0

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add("r", 1.0)
        with pytest.raises(ValueError):
            catalog.add("r", 2.0)

    def test_invalid_cardinality(self):
        with pytest.raises(ValueError):
            Catalog().add("r", 0.0)

    def test_index_order(self):
        catalog = catalog_from_cardinalities([10, 20, 30])
        assert catalog.names == ["R0", "R1", "R2"]
        assert catalog.index_of("R1") == 1
        assert catalog.cardinalities == [10.0, 20.0, 30.0]
        with pytest.raises(KeyError):
            catalog.index_of("nope")
        with pytest.raises(KeyError):
            catalog.get("nope")

    def test_equijoin_selectivity(self):
        catalog = Catalog()
        catalog.add("r", 100.0, {"a": 50.0})
        catalog.add("s", 200.0, {"b": 20.0})
        assert catalog.equijoin_selectivity("r", "a", "s", "b") == pytest.approx(
            1.0 / 50.0
        )


class TestOperatorCardinality:
    def test_inner(self):
        assert inner_join_cardinality(10, 20, 0.1) == pytest.approx(20.0)
        assert operator_cardinality("join", 10, 20, 0.1) == pytest.approx(20.0)

    def test_left_outer_keeps_left(self):
        assert operator_cardinality("left_outer", 100, 10, 0.0001) == 100.0

    def test_full_outer_keeps_both(self):
        estimate = operator_cardinality("full_outer", 100, 50, 0.0001)
        assert estimate >= 100.0 and estimate >= 50.0

    def test_semi_bounded_by_left(self):
        assert operator_cardinality("semi", 100, 1000, 0.5) == 100.0
        assert operator_cardinality("semi", 100, 10, 0.01) == pytest.approx(10.0)

    def test_anti_complements_semi(self):
        semi = operator_cardinality("semi", 100, 10, 0.01)
        anti = operator_cardinality("anti", 100, 10, 0.01)
        assert semi + anti == pytest.approx(100.0)

    def test_nest_one_row_per_left(self):
        assert operator_cardinality("nest", 42, 1000, 0.5) == 42.0

    def test_dependent_variants_match_base(self):
        assert operator_cardinality("dsemi", 100, 10, 0.01) == (
            operator_cardinality("semi", 100, 10, 0.01)
        )

    def test_one_row_clamp(self):
        assert operator_cardinality("anti", 10, 1000, 0.9) == 1.0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            operator_cardinality("teleport", 1, 1, 1)


class TestSetCardinalityEstimator:
    def test_memoized_set_function(self, triangle_graph):
        estimator = SetCardinalityEstimator(triangle_graph, [10.0, 20.0, 30.0])
        full = estimator.cardinality(0b111)
        # all three edges applied
        assert full == pytest.approx(10 * 20 * 30 * 0.1 * 0.2 * 0.3)
        assert estimator.cardinality(0b111) == full  # cached path

    def test_validates_input(self, triangle_graph):
        with pytest.raises(ValueError):
            SetCardinalityEstimator(triangle_graph, [1.0])
        estimator = SetCardinalityEstimator(triangle_graph, [1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            estimator.cardinality(0)

    def test_newly_applied_selectivity(self, triangle_graph):
        estimator = SetCardinalityEstimator(triangle_graph, [10.0] * 3)
        # joining {0,1} with {2} newly applies edges 1-2 and 2-0
        assert estimator.newly_applied_selectivity(0b011, 0b100) == (
            pytest.approx(0.2 * 0.3)
        )

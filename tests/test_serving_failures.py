"""Failure-path tests for the plan-serving daemon.

The satellite requirement: a worker killed mid-request, a client
disconnecting mid-response, malformed/oversized frames, and shutdown
with a pending queue must all degrade gracefully — explicit error
responses or clean reconnects, never a corrupted shared cache.

The servers here run with ``debug_ops=True`` to get the
``debug-sleep`` (hold an admission slot) and ``debug-kill-worker``
(SIGKILL-equivalent via ``os._exit``) ops; real deployments never
enable these.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.optimizer import OptimizerConfig, QuerySpec
from repro.serving import BackgroundServer, PlanClient, ServerError
from repro.serving.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    encode_frame,
    recv_frame,
    send_frame,
)


def chain_spec(n: int = 5, tag: float = 0.0) -> QuerySpec:
    return QuerySpec(
        relations=[(f"r{i}", 100.0 + 10.0 * i + tag) for i in range(n)],
        joins=[(f"r{i}", f"r{i + 1}", 0.1) for i in range(n - 1)],
    )


@pytest.fixture
def server():
    with BackgroundServer(
        OptimizerConfig(cache="on"), debug_ops=True
    ) as daemon:
        yield daemon


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached in time")


class TestWorkerDeath:
    def test_killed_worker_rebuilds_pool_and_request_succeeds(self, server):
        with PlanClient(server.address) as client:
            # warm one entry through the original pool
            assert client.optimize(chain_spec())["via"] == "pool"
            client.request({"op": "debug-kill-worker"})
            # next miss hits the broken pool, which is rebuilt once —
            # the request still succeeds, through cold fresh workers
            answer = client.optimize(chain_spec(tag=1.0))
            assert answer["ok"] and answer["via"] == "pool"
            stats = client.stats()
            assert stats["server"]["pool_rebuilds"] == 1

    def test_shared_cache_survives_worker_death(self, server):
        with PlanClient(server.address) as client:
            first = client.optimize(chain_spec())
            client.request({"op": "debug-kill-worker"})
            # the parent-side cache was never in the dead process:
            # the same query is still a parent hit with the same cost
            again = client.optimize(chain_spec())
            assert again["via"] == "parent"
            assert again["cost"] == first["cost"]

    def test_tracker_resets_to_full_warm_after_rebuild(self, server):
        with PlanClient(server.address) as client:
            client.optimize(chain_spec())
            before = client.stats()["sync"]["full_syncs"]
            client.request({"op": "debug-kill-worker"})
            client.optimize(chain_spec(tag=2.0))
            sync = client.stats()["sync"]
            # fresh workers are cold: the floor dropped back to 0
            assert sync["full_syncs"] > before


class TestClientDisconnects:
    def test_disconnect_mid_frame_keeps_server_alive(self, server):
        raw = socket.create_connection(server.address, timeout=5.0)
        raw.sendall(b"\x00\x00")  # half a header
        raw.close()
        with PlanClient(server.address) as client:
            wait_until(lambda: (
                client.stats()["server"]["protocol_errors"]
                + client.stats()["server"]["client_disconnects"]
            ) >= 1)
            assert client.ping() is True

    def test_disconnect_mid_response_leaks_no_slot(self, server):
        raw = socket.create_connection(server.address, timeout=5.0)
        send_frame(raw, {"op": "debug-sleep", "seconds": 0.2})
        raw.close()  # gone before the response is written
        with PlanClient(server.address) as client:
            wait_until(
                lambda: client.stats()["server"]["in_flight"] == 0
                and client.stats()["server"]["requests"] >= 2
            )
            # the slot came back: a full burst is admitted again
            assert client.optimize(chain_spec())["ok"]


class TestMalformedFrames:
    def test_garbage_body_gets_error_then_close(self, server):
        raw = socket.create_connection(server.address, timeout=5.0)
        try:
            body = b"this is not json"
            raw.sendall(len(body).to_bytes(HEADER_BYTES, "big") + body)
            answer = recv_frame(raw)
            assert answer["ok"] is False
            assert answer["error"] == "protocol-error"
            # the stream is closed afterwards: recv sees EOF
            assert raw.recv(1) == b""
        finally:
            raw.close()

    def test_oversized_frame_gets_error_then_close(self, server):
        raw = socket.create_connection(server.address, timeout=5.0)
        try:
            raw.sendall(
                (MAX_FRAME_BYTES + 1).to_bytes(HEADER_BYTES, "big")
            )
            answer = recv_frame(raw)
            assert answer["ok"] is False
            assert answer["error"] == "frame-too-large"
            assert raw.recv(1) == b""
        finally:
            raw.close()

    def test_missing_op_is_bad_request(self, server):
        with PlanClient(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.request({"not-op": 1})
            assert err.value.code == "bad-request"
            assert client.ping() is True

    def test_malformed_query_is_bad_request(self, server):
        with PlanClient(server.address) as client:
            with pytest.raises(ServerError) as err:
                client.request({"op": "optimize", "query": {"relations": 7}})
            assert err.value.code == "bad-request"


class TestAdmissionControl:
    def test_overloaded_rejection_when_queue_full(self):
        with BackgroundServer(
            OptimizerConfig(cache="on"),
            debug_ops=True,
            max_in_flight=1,
            queue_limit=0,
        ) as daemon:
            holder = PlanClient(daemon.address)
            errors = []

            def hold():
                try:
                    holder.request({"op": "debug-sleep", "seconds": 1.0})
                except ServerError as exc:  # pragma: no cover
                    errors.append(exc)

            thread = threading.Thread(target=hold)
            thread.start()
            try:
                with PlanClient(daemon.address) as client:
                    wait_until(
                        lambda: client.stats()["server"]["in_flight"] == 1
                    )
                    with pytest.raises(ServerError) as err:
                        client.optimize(chain_spec())
                    assert err.value.code == "overloaded"
                    assert client.stats()["server"]["rejected"] == 1
            finally:
                thread.join()
                holder.close()
            assert not errors

    def test_queue_admits_after_slot_frees(self):
        with BackgroundServer(
            OptimizerConfig(cache="on"),
            debug_ops=True,
            max_in_flight=1,
            queue_limit=8,
        ) as daemon:
            holder = PlanClient(daemon.address)
            thread = threading.Thread(
                target=holder.request,
                args=({"op": "debug-sleep", "seconds": 0.3},),
            )
            thread.start()
            try:
                with PlanClient(daemon.address) as client:
                    wait_until(
                        lambda: client.stats()["server"]["in_flight"] == 1
                    )
                    # queued behind the sleeper, then served normally
                    assert client.optimize(chain_spec())["ok"]
            finally:
                thread.join()
                holder.close()


class TestShutdownWithPendingWork:
    def test_shutdown_drains_inflight_request(self, server):
        sleeper = PlanClient(server.address)
        answers = []
        thread = threading.Thread(
            target=lambda: answers.append(
                sleeper.request({"op": "debug-sleep", "seconds": 0.4})
            )
        )
        thread.start()
        try:
            with PlanClient(server.address) as client:
                wait_until(
                    lambda: client.stats()["server"]["in_flight"] == 1
                )
                answer = client.shutdown(drain_timeout=5.0)
                assert answer["ok"] and answer["drained"]
        finally:
            thread.join()
            sleeper.close()
        # the pending request finished and got its response first
        assert answers and answers[0]["ok"]

    def test_optimize_after_shutdown_starts_is_rejected(self, server):
        sleeper = PlanClient(server.address)
        thread = threading.Thread(
            target=sleeper.request,
            args=({"op": "debug-sleep", "seconds": 0.4},),
        )
        thread.start()
        shutter = PlanClient(server.address)
        rejected = PlanClient(server.address)
        shutdown_answers = []
        shut_thread = threading.Thread(
            target=lambda: shutdown_answers.append(
                shutter.shutdown(drain_timeout=5.0)
            )
        )
        try:
            wait_until(
                lambda: rejected.stats()["server"]["in_flight"] == 1
            )
            shut_thread.start()
            wait_until(
                lambda: rejected.stats()["server"]["closing"] is True
            )
            with pytest.raises(ServerError) as err:
                rejected.optimize(chain_spec(tag=9.0))
            assert err.value.code == "shutting-down"
        finally:
            thread.join()
            shut_thread.join()
            for connection in (sleeper, shutter, rejected):
                connection.close()
        assert shutdown_answers and shutdown_answers[0]["ok"]

    def test_debug_ops_disabled_by_default(self):
        with BackgroundServer(OptimizerConfig(cache="on")) as daemon:
            with PlanClient(daemon.address) as client:
                with pytest.raises(ServerError) as err:
                    client.request({"op": "debug-kill-worker"})
                assert err.value.code == "unknown-op"

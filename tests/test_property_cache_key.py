"""Property-based audit of ``OptimizerConfig.cache_key()`` (hypothesis).

The companion to the static ``cache-key-completeness`` rule: for any
valid configuration, perturbing any single *keyed* field must change
``cache_key()``, and perturbing any field in ``CACHE_KEY_EXCLUDED``
must leave it untouched (so configs differing only in plumbing share
plan-cache entries).  Together the two guarantees pin the key surface
exactly — no silent leak in either direction.
"""

from dataclasses import fields, replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.models import (
    CoutModel,
    HashJoinModel,
    MinOfModel,
    NestedLoopModel,
    SortMergeModel,
)
from repro.optimizer import DispatchStage, OptimizerConfig, PipelineStages

COMMON = dict(deadline=None, max_examples=60)

ALGORITHMS = ("auto", "dphyp", "dpccp", "dpsize", "dpsub", "greedy")
MODES = ("hyperedges", "tes-filter")
COST_MODELS = st.sampled_from([
    None,
    CoutModel(),
    NestedLoopModel(),
    SortMergeModel(),
    HashJoinModel(1.5),
    HashJoinModel(2.5),
    MinOfModel(),
])


@st.composite
def configs(draw):
    # algorithm stays "auto" so exact_threshold participates in the
    # key; the algorithm field itself is perturbed explicitly below.
    return OptimizerConfig(
        algorithm="auto",
        cost_model=draw(COST_MODELS),
        mode=draw(st.sampled_from(MODES)),
        default_cardinality=draw(
            st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
        ),
        on_disconnected=draw(
            st.sampled_from(("raise", "connect", "plan-none"))
        ),
        exact_threshold=draw(st.integers(min_value=1, max_value=30)),
        minimize_neighborhoods=draw(st.booleans()),
        memoize_neighborhoods=draw(st.booleans()),
        cache=draw(st.sampled_from(("auto", "on", "off"))),
        cache_size=draw(st.integers(min_value=1, max_value=4096)),
        cache_path=draw(st.sampled_from((None, "a.json", "b.json"))),
        cache_autosave=draw(st.booleans()),
        parallel_workers=draw(st.sampled_from((None, 1, 2, 8))),
        executor=draw(st.sampled_from(("thread", "process"))),
    )


def perturb(config: OptimizerConfig, name: str) -> OptimizerConfig:
    """Return a valid config differing from ``config`` in exactly ``name``."""
    current = getattr(config, name)
    if name == "algorithm":
        value = "dphyp" if current == "auto" else "auto"
    elif name == "cost_model":
        value = HashJoinModel(9.75) if (
            current is None or current.cache_key() != HashJoinModel(9.75).cache_key()
        ) else NestedLoopModel()
    elif name == "mode":
        value = MODES[1 - MODES.index(current)]
    elif name == "on_disconnected":
        value = "connect" if current == "raise" else "raise"
    elif name == "cache":
        value = "on" if current == "off" else "off"
    elif name == "cache_path":
        value = "other.json" if current != "other.json" else None
    elif name == "cache_ttl":
        value = 60.0 if current != 60.0 else 120.0
    elif name == "cache_size_budget":
        value = 1 << 20 if current != 1 << 20 else 1 << 21
    elif name == "cache_namespace":
        # deliberately keyed (the one plumbing-looking exception):
        # namespaces exist to partition a shared cache
        value = "tenant-x" if current != "tenant-x" else "tenant-y"
    elif name == "parallel_workers":
        value = 3 if current != 3 else None
    elif name == "executor":
        value = "process" if current == "thread" else "thread"
    elif name == "pipeline":
        # a fresh stage instance: unequal to the shared default
        # singleton under dataclass equality
        value = PipelineStages(dispatch=DispatchStage())
    elif isinstance(current, bool):
        value = not current
    elif isinstance(current, int):
        value = current + 1
    elif isinstance(current, float):
        value = current + 1.0
    else:  # pragma: no cover - new field types must be added here
        raise AssertionError(f"no perturbation for field {name!r}")
    return replace(config, **{name: value})


KEYED = sorted(
    {f.name for f in fields(OptimizerConfig)}
    - set(OptimizerConfig.CACHE_KEY_EXCLUDED)
)
EXCLUDED = sorted(OptimizerConfig.CACHE_KEY_EXCLUDED)


def test_every_field_is_classified():
    assert set(KEYED) | set(EXCLUDED) == {
        f.name for f in fields(OptimizerConfig)
    }
    assert not set(KEYED) & set(EXCLUDED)


@settings(**COMMON)
@given(config=configs(), name=st.sampled_from(KEYED))
def test_perturbing_any_keyed_field_changes_the_key(config, name):
    changed = perturb(config, name)
    assert getattr(changed, name) != getattr(config, name)
    assert changed.cache_key() != config.cache_key()


@settings(**COMMON)
@given(config=configs(), name=st.sampled_from(EXCLUDED))
def test_perturbing_any_excluded_field_keeps_the_key(config, name):
    changed = perturb(config, name)
    assert getattr(changed, name) != getattr(config, name)
    assert changed.cache_key() == config.cache_key()


@settings(**COMMON)
@given(config=configs())
def test_key_is_reprable_and_stable(config):
    # persisted cache files round-trip keys through repr/literal_eval,
    # so every key must be a printable literal and deterministic
    import ast

    key = config.cache_key()
    assert ast.literal_eval(repr(key)) == key
    assert config.cache_key() == key

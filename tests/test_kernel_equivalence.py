"""Property-based equivalence: ``dphyp-kernel`` vs ``dphyp``.

The kernel's contract is not "approximately the same plan" — it is the
*same* search (identical csg-cmp-pairs) pricing the *same* candidates
with bit-identical float arithmetic, differing only in data layout.
These tests pin that contract on random hypergraphs:

* exact ``cost`` / ``cardinality`` / join-order equality against both
  ``dphyp`` and the seed-faithful ``dphyp-recursive``, across every
  shipped cost model (including ``MinOfModel``, which exercises the
  generic proxy path);
* ``SearchStats`` parity — ``ccp_emitted``, ``table_entries`` and
  ``cost_calls`` must match, or the kernel explored a different space;
* the numpy-free scalar fallback (simulated by monkeypatching the
  module's ``_np`` handle) produces the identical result, and the
  vectorized/scalar cardinality closures agree bit-for-bit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dphyp import solve_dphyp
from repro.core.dphyp_recursive import solve_dphyp_recursive
from repro.core.kernel import solve_dphyp_kernel
from repro.core.kernel import costing as kernel_costing
from repro.core.kernel.costing import EdgeCoefficients, make_cardinality_fn
from repro.core.plans import JoinPlanBuilder
from repro.core.stats import SearchStats
from repro.cost.models import (
    CoutModel,
    HashJoinModel,
    MinOfModel,
    NestedLoopModel,
    SortMergeModel,
)
from repro.workloads.random_queries import (
    random_hypergraph_query,
    random_simple_query,
)

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40
)

MODELS = [
    CoutModel,
    NestedLoopModel,
    HashJoinModel,
    SortMergeModel,
    lambda: MinOfModel([HashJoinModel(), SortMergeModel()]),
]


@st.composite
def hypergraph_queries(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_hyperedges = draw(st.integers(min_value=0, max_value=3))
    islands = draw(st.integers(min_value=1, max_value=2))
    flex = draw(st.sampled_from([0.0, 0.3, 0.7]))
    return random_hypergraph_query(
        n,
        seed,
        n_hyperedges=n_hyperedges,
        n_islands=islands,
        flex_probability=flex,
    )


@st.composite
def simple_queries(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    extra = draw(st.sampled_from([0.0, 0.3, 0.8]))
    return random_simple_query(n, seed, extra_edge_probability=extra)


def solve(solver, query, make_model=CoutModel):
    stats = SearchStats()
    builder = JoinPlanBuilder(
        query.graph,
        query.cardinalities,
        cost_model=make_model(),
        stats=stats,
    )
    plan = solver(query.graph, builder, stats)
    return plan, stats


def join_order(plan):
    if plan is None:
        return None
    if plan.is_leaf:
        return plan.nodes
    return (join_order(plan.left), join_order(plan.right))


def assert_equivalent(query, make_model=CoutModel):
    kernel_plan, kernel_stats = solve(solve_dphyp_kernel, query, make_model)
    for reference_solver in (solve_dphyp, solve_dphyp_recursive):
        plan, stats = solve(reference_solver, query, make_model)
        if plan is None:
            assert kernel_plan is None
            continue
        assert kernel_plan is not None
        # bit-identical, not approx: the kernel replays the same floats
        assert kernel_plan.cost == plan.cost
        assert kernel_plan.cardinality == plan.cardinality
        assert join_order(kernel_plan) == join_order(plan)
        assert kernel_stats.ccp_emitted == stats.ccp_emitted
        assert kernel_stats.table_entries == stats.table_entries
        assert kernel_stats.cost_calls == stats.cost_calls


class TestKernelEquivalence:
    @given(query=hypergraph_queries())
    @settings(**COMMON)
    def test_hypergraphs_cout(self, query):
        assert_equivalent(query)

    @given(query=simple_queries())
    @settings(**COMMON)
    def test_simple_graphs_cout(self, query):
        assert_equivalent(query)

    @given(
        query=simple_queries(),
        model_index=st.integers(min_value=0, max_value=len(MODELS) - 1),
    )
    @settings(**COMMON)
    def test_simple_graphs_all_models(self, query, model_index):
        assert_equivalent(query, MODELS[model_index])

    @given(query=hypergraph_queries())
    @settings(**COMMON)
    def test_hypergraphs_sort_merge(self, query):
        # the one shipped model whose two join orders price
        # differently in float arithmetic — the kernel must offer both
        assert_equivalent(query, SortMergeModel)


class TestScalarFallback:
    """numpy is an accelerator, never a dependency."""

    @given(query=hypergraph_queries())
    @settings(**COMMON)
    def test_no_numpy_is_identical(self, query):
        reference, reference_stats = solve(solve_dphyp, query)
        saved = kernel_costing._np
        kernel_costing._np = None  # simulate `import numpy` failing
        try:
            coefficients = EdgeCoefficients(query.graph)
            assert coefficients.vectorized is False
            plan, stats = solve(solve_dphyp_kernel, query)
        finally:
            kernel_costing._np = saved
        if reference is None:
            assert plan is None
            return
        assert plan is not None
        assert plan.cost == reference.cost
        assert plan.cardinality == reference.cardinality
        assert join_order(plan) == join_order(reference)
        assert stats.ccp_emitted == reference_stats.ccp_emitted

    @given(query=simple_queries())
    @settings(**COMMON)
    def test_vectorized_and_scalar_cardinality_agree(self, query):
        numpy = pytest.importorskip("numpy")
        del numpy  # only the availability matters
        graph = query.graph
        base = [float(c) for c in query.cardinalities]
        fast = EdgeCoefficients(graph, use_numpy=True)
        slow = EdgeCoefficients(graph, use_numpy=False)
        assert fast.vectorized is (graph.n_nodes <= 64 and bool(graph.edges))
        assert slow.vectorized is False
        card_fast = make_cardinality_fn(base, fast, {})
        card_slow = make_cardinality_fn(base, slow, {})
        for s in range(1, 1 << graph.n_nodes):
            assert card_fast(s) == card_slow(s)

    def test_explicit_use_numpy_false_means_scalar(self):
        query = random_simple_query(5, seed=7)
        coefficients = EdgeCoefficients(query.graph, use_numpy=False)
        assert coefficients.vectorized is False
        assert coefficients.np_masks is None

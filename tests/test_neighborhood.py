"""Unit tests for neighborhood computation (Section 2.3)."""

from repro.core import bitset
from repro.core.hypergraph import Hyperedge, Hypergraph
from repro.core.neighborhood import NeighborhoodIndex


class TestSimpleNeighborhood:
    def test_chain(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(1, 2)
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(1), 0) == bitset.set_of(0, 2)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.set_of(1)

    def test_exclusion_set(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(1, 2)
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(
            bitset.singleton(1), bitset.singleton(0)
        ) == bitset.set_of(2)

    def test_own_nodes_never_in_neighborhood(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(1, 2)
        index = NeighborhoodIndex(graph)
        n = index.neighborhood(bitset.set_of(0, 1), 0)
        assert n & bitset.set_of(0, 1) == 0


class TestPaperExample:
    """The worked example of Section 2.3 on the Fig. 2 hypergraph."""

    def test_neighborhood_of_left_side(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        s = bitset.set_of(0, 1, 2)  # paper's {R1,R2,R3}
        # paper: N(S, X) = {R4} — only min(v) of the hyperedge target
        assert index.neighborhood(s, s) == bitset.singleton(3)

    def test_hyperedge_needs_full_anchor(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        # {R1, R2} does not contain the full hypernode {R1,R2,R3}:
        # only the simple edge to R3 contributes.
        assert index.neighborhood(bitset.set_of(0, 1), 0) == bitset.singleton(2)

    def test_excluded_representative_blocks_edge(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        s = bitset.set_of(0, 1, 2)
        x = s | bitset.singleton(3)  # exclude R4 = min of the target
        assert index.neighborhood(s, x) == 0


class TestSubsumption:
    def test_candidate_subsumed_by_simple_neighbor(self):
        # edge 0-1 simple plus hyperedge ({0},{1,2}): target {1,2} is
        # subsumed by simple neighbor {1} and contributes nothing.
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_edge(Hyperedge(left=0b1, right=0b110))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.singleton(1)

    def test_subsumed_hypernode_dropped(self):
        # two hyperedges from {0}: targets {1,2} and {1,2,3}; the
        # minimal set keeps only {1,2} (E-downarrow minimization) but
        # the representative min is node 1 either way.
        graph = Hypergraph(n_nodes=4)
        graph.add_edge(Hyperedge(left=0b1, right=0b0110))
        graph.add_edge(Hyperedge(left=0b1, right=0b1110))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.singleton(1)

    def test_different_representatives_union(self):
        graph = Hypergraph(n_nodes=5)
        graph.add_edge(Hyperedge(left=0b1, right=bitset.set_of(1, 2)))
        graph.add_edge(Hyperedge(left=0b1, right=bitset.set_of(3, 4)))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.set_of(1, 3)


class TestGeneralizedEdges:
    def test_flex_travels_with_target(self):
        # (u={0}, v={2}, w={1}): from {0}, target is {2} plus flex {1},
        # representative is min = node 1.
        graph = Hypergraph(n_nodes=3)
        graph.add_edge(Hyperedge(left=0b1, right=0b100, flex=0b10))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.singleton(1)

    def test_flex_inside_s_counts_as_anchor_side(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_edge(Hyperedge(left=0b1, right=0b100, flex=0b10))
        index = NeighborhoodIndex(graph)
        # S = {0,1}: flex node already inside; target is just {2}
        assert index.neighborhood(bitset.set_of(0, 1), 0) == bitset.singleton(2)

    def test_excluded_flex_blocks_edge(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_edge(Hyperedge(left=0b1, right=0b100, flex=0b10))
        index = NeighborhoodIndex(graph)
        # flex node 1 is excluded and outside S: edge unusable
        assert index.neighborhood(bitset.singleton(0), bitset.singleton(1)) == 0


class TestMemoization:
    def _chain_index(self, memoize=True):
        graph = Hypergraph(n_nodes=4)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(1, 2)
        graph.add_simple_edge(2, 3)
        return NeighborhoodIndex(graph, memoize=memoize)

    def test_repeat_query_hits_cache(self):
        index = self._chain_index()
        s = bitset.set_of(1, 2)
        first = index.simple_neighborhood(s)
        assert (index.cache_hits, index.cache_misses) == (0, 1)
        assert index.simple_neighborhood(s) == first
        assert (index.cache_hits, index.cache_misses) == (1, 1)

    def test_singletons_bypass_cache(self):
        index = self._chain_index()
        assert index.simple_neighborhood(bitset.singleton(1)) == (
            bitset.set_of(0, 2)
        )
        assert index.simple_neighborhood(0) == 0
        assert (index.cache_hits, index.cache_misses) == (0, 0)

    def test_memoize_off_never_touches_cache(self):
        index = self._chain_index(memoize=False)
        s = bitset.set_of(0, 3)
        assert index.simple_neighborhood(s) == bitset.set_of(1, 2)
        assert index.simple_neighborhood(s) == bitset.set_of(1, 2)
        assert (index.cache_hits, index.cache_misses) == (0, 0)

    def test_cached_and_fresh_results_agree(self):
        graph = Hypergraph(n_nodes=6)
        for a, b in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (1, 5)]:
            graph.add_simple_edge(a, b)
        memoized = NeighborhoodIndex(graph, memoize=True)
        cold = NeighborhoodIndex(graph, memoize=False)
        for s in bitset.subsets(graph.all_nodes):
            assert memoized.simple_neighborhood(s) == (
                cold.simple_neighborhood(s)
            ), bitset.format_set(s)
            # second pass: answers must come from cache unchanged
            assert memoized.simple_neighborhood(s) == (
                cold.simple_neighborhood(s)
            )


class TestComplexAnchorSkip:
    def test_anchor_mins_precomputed(self):
        graph = Hypergraph(n_nodes=5)
        graph.add_simple_edge(0, 1)
        graph.add_edge(
            Hyperedge(left=bitset.set_of(2, 3), right=bitset.set_of(4))
        )
        index = NeighborhoodIndex(graph)
        # min of {2,3} and min of {4}, one per orientation
        assert index.anchor_mins == bitset.set_of(2, 4)

    def test_disjoint_sets_skip_scan_with_same_result(self):
        graph = Hypergraph(n_nodes=5)
        graph.add_simple_edge(0, 1)
        graph.add_edge(
            Hyperedge(left=bitset.set_of(2, 3), right=bitset.set_of(4))
        )
        index = NeighborhoodIndex(graph)
        # S = {0} intersects no anchor: neighborhood is purely simple
        assert index.neighborhood(bitset.singleton(0), 0) == (
            bitset.singleton(1)
        )
        # S = {2,3} contains an anchor: the hyperedge contributes
        assert index.neighborhood(bitset.set_of(2, 3), 0) == (
            bitset.singleton(4)
        )

    def test_simple_only_graph_has_empty_anchor_mask(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        index = NeighborhoodIndex(graph)
        assert index.anchor_mins == 0
        assert not index.has_complex


class TestReachability:
    def test_reachable_from(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        universe = fig2_graph.all_nodes
        assert index.reachable_from(bitset.singleton(0), universe) == universe
        # restricted to the left chain only
        left = bitset.set_of(0, 1, 2)
        assert index.reachable_from(bitset.singleton(0), left) == left

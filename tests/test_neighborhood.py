"""Unit tests for neighborhood computation (Section 2.3)."""

from repro.core import bitset
from repro.core.hypergraph import Hyperedge, Hypergraph
from repro.core.neighborhood import NeighborhoodIndex


class TestSimpleNeighborhood:
    def test_chain(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(1, 2)
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(1), 0) == bitset.set_of(0, 2)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.set_of(1)

    def test_exclusion_set(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(1, 2)
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(
            bitset.singleton(1), bitset.singleton(0)
        ) == bitset.set_of(2)

    def test_own_nodes_never_in_neighborhood(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_simple_edge(1, 2)
        index = NeighborhoodIndex(graph)
        n = index.neighborhood(bitset.set_of(0, 1), 0)
        assert n & bitset.set_of(0, 1) == 0


class TestPaperExample:
    """The worked example of Section 2.3 on the Fig. 2 hypergraph."""

    def test_neighborhood_of_left_side(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        s = bitset.set_of(0, 1, 2)  # paper's {R1,R2,R3}
        # paper: N(S, X) = {R4} — only min(v) of the hyperedge target
        assert index.neighborhood(s, s) == bitset.singleton(3)

    def test_hyperedge_needs_full_anchor(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        # {R1, R2} does not contain the full hypernode {R1,R2,R3}:
        # only the simple edge to R3 contributes.
        assert index.neighborhood(bitset.set_of(0, 1), 0) == bitset.singleton(2)

    def test_excluded_representative_blocks_edge(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        s = bitset.set_of(0, 1, 2)
        x = s | bitset.singleton(3)  # exclude R4 = min of the target
        assert index.neighborhood(s, x) == 0


class TestSubsumption:
    def test_candidate_subsumed_by_simple_neighbor(self):
        # edge 0-1 simple plus hyperedge ({0},{1,2}): target {1,2} is
        # subsumed by simple neighbor {1} and contributes nothing.
        graph = Hypergraph(n_nodes=3)
        graph.add_simple_edge(0, 1)
        graph.add_edge(Hyperedge(left=0b1, right=0b110))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.singleton(1)

    def test_subsumed_hypernode_dropped(self):
        # two hyperedges from {0}: targets {1,2} and {1,2,3}; the
        # minimal set keeps only {1,2} (E-downarrow minimization) but
        # the representative min is node 1 either way.
        graph = Hypergraph(n_nodes=4)
        graph.add_edge(Hyperedge(left=0b1, right=0b0110))
        graph.add_edge(Hyperedge(left=0b1, right=0b1110))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.singleton(1)

    def test_different_representatives_union(self):
        graph = Hypergraph(n_nodes=5)
        graph.add_edge(Hyperedge(left=0b1, right=bitset.set_of(1, 2)))
        graph.add_edge(Hyperedge(left=0b1, right=bitset.set_of(3, 4)))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.set_of(1, 3)


class TestGeneralizedEdges:
    def test_flex_travels_with_target(self):
        # (u={0}, v={2}, w={1}): from {0}, target is {2} plus flex {1},
        # representative is min = node 1.
        graph = Hypergraph(n_nodes=3)
        graph.add_edge(Hyperedge(left=0b1, right=0b100, flex=0b10))
        index = NeighborhoodIndex(graph)
        assert index.neighborhood(bitset.singleton(0), 0) == bitset.singleton(1)

    def test_flex_inside_s_counts_as_anchor_side(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_edge(Hyperedge(left=0b1, right=0b100, flex=0b10))
        index = NeighborhoodIndex(graph)
        # S = {0,1}: flex node already inside; target is just {2}
        assert index.neighborhood(bitset.set_of(0, 1), 0) == bitset.singleton(2)

    def test_excluded_flex_blocks_edge(self):
        graph = Hypergraph(n_nodes=3)
        graph.add_edge(Hyperedge(left=0b1, right=0b100, flex=0b10))
        index = NeighborhoodIndex(graph)
        # flex node 1 is excluded and outside S: edge unusable
        assert index.neighborhood(bitset.singleton(0), bitset.singleton(1)) == 0


class TestReachability:
    def test_reachable_from(self, fig2_graph):
        index = NeighborhoodIndex(fig2_graph)
        universe = fig2_graph.all_nodes
        assert index.reachable_from(bitset.singleton(0), universe) == universe
        # restricted to the left chain only
        left = bitset.set_of(0, 1, 2)
        assert index.reachable_from(bitset.singleton(0), left) == left

#!/usr/bin/env python3
"""Execute the ```python fenced snippets in docs/*.md (and README.md).

Documentation that cannot run is documentation that has drifted.  This
runner extracts every fenced code block tagged ``python`` and executes
the blocks of each file top-to-bottom in one shared namespace per file
(so a later snippet may reuse imports/variables from an earlier one,
reading like a session).  Blocks tagged ``python no-run`` are
syntax-checked with :func:`compile` but not executed — for snippets
that need unavailable context (network, huge runtimes).

Usage::

    python tools/run_doc_snippets.py            # docs/*.md + README.md
    python tools/run_doc_snippets.py docs/cache.md

Exit status 0 iff every snippet ran clean.  CI runs this in the docs
job; ``tests/test_docs.py`` runs it in the tier-1 suite.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

FENCE = re.compile(
    r"^```python[ \t]*(?P<norun>no-run)?[ \t]*\n(?P<body>.*?)^```",
    re.MULTILINE | re.DOTALL,
)


def iter_snippets(text: str):
    """Yield ``(line_number, no_run, source)`` per python fence."""
    for match in FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        yield line, bool(match.group("norun")), match.group("body")


def display(path: pathlib.Path) -> str:
    """Repo-relative rendering when possible, absolute otherwise."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def run_file(path: pathlib.Path) -> list[str]:
    """Execute one file's snippets; return error descriptions."""
    errors = []
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    count = 0
    for line, no_run, source in iter_snippets(path.read_text()):
        label = f"{display(path)}:{line}"
        try:
            code = compile(source, label, "exec")
            if not no_run:
                exec(code, namespace)  # noqa: S102 - the point of the tool
        except BaseException as exc:  # report, keep going
            errors.append(f"{label}: {type(exc).__name__}: {exc}")
            continue
        count += 1
        print(f"ok   {label}" + ("  (syntax only)" if no_run else ""))
    if count == 0 and not errors:
        print(f"     {display(path)}: no python snippets")
    return errors


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(SRC))
    if argv:
        paths = [pathlib.Path(arg).resolve() for arg in argv]
    else:
        paths = sorted((REPO_ROOT / "docs").glob("*.md"))
        paths.append(REPO_ROOT / "README.md")
    failures: list[str] = []
    for path in paths:
        if not path.exists():
            failures.append(f"{path}: no such file")
            continue
        failures.extend(run_file(path))
    if failures:
        print("\nFAILED snippets:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall documentation snippets executed cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Fig. 8b: cycle query with increasing outer joins — DPhyp vs DPsize
(DPsub excluded, as in the paper: >1400 ms there).

Paper shape: runtime dips first (outer joins pin against inner joins,
shrinking the space) and rises again as outer joins — associative among
themselves — dominate; DPhyp stays ahead of DPsize throughout.
"""

import pytest

from repro.algebra.pipeline import optimize_operator_tree
from repro.workloads.nonreorderable import cycle_outerjoin_tree

N_RELATIONS = 10


def optimize_algorithm(tree, algorithm):
    result = optimize_operator_tree(tree, algorithm=algorithm)
    assert result.plan is not None
    return result


@pytest.mark.parametrize("n_outerjoins", [0, 3, 6, 9])
@pytest.mark.parametrize("algorithm", ["dphyp", "dpsize"])
def test_cycle_outerjoins(benchmark, algorithm, n_outerjoins):
    tree = cycle_outerjoin_tree(N_RELATIONS, n_outerjoins, seed=7)
    result = benchmark(optimize_algorithm, tree, algorithm)
    assert result.cost > 0

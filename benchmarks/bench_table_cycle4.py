"""Sec. 4.2 table: cycle-based hypergraphs with 4 relations.

Paper values (ms, 3.2 GHz Pentium D, C++):

    splits  DPhyp  DPsize  DPsub
    0       0.02   0.035   0.035
    1       0.025  0.025   0.025

Pure Python is ~2 orders of magnitude slower; the *shape* (near-parity
of all three algorithms at this tiny size) is the reproduced result.
"""

import pytest

from conftest import run_algorithm
from repro.workloads.hyper import cycle_hypergraph

ALGORITHMS = ("dphyp", "dpsize", "dpsub")


@pytest.mark.parametrize("splits", [0, 1])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cycle4(benchmark, algorithm, splits):
    query = cycle_hypergraph(4, splits, seed=0)
    plan = benchmark(
        run_algorithm, query.graph, query.cardinalities, algorithm
    )
    assert plan is not None

"""Sec. 4.3 table: star-based hypergraphs with 4 satellites.

Paper values (ms):

    splits  DPhyp  DPsize  DPsub
    0       0.03   0.085   0.065
    1       0.055  0.09    0.08

Reproduced shape: DPhyp fastest, DPsub slightly ahead of DPsize.
"""

import pytest

from conftest import run_algorithm
from repro.workloads.hyper import star_hypergraph

ALGORITHMS = ("dphyp", "dpsize", "dpsub")


@pytest.mark.parametrize("splits", [0, 1])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_star4(benchmark, algorithm, splits):
    query = star_hypergraph(4, splits, seed=0)
    plan = benchmark(
        run_algorithm, query.graph, query.cardinalities, algorithm
    )
    assert plan is not None

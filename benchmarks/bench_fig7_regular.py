"""Fig. 7: star queries *without* hyperedges (regular graphs),
log-scale growth over the number of relations.

Paper shape: DPhyp ≈ DPccp on regular graphs and orders of magnitude
below DPsize/DPsub as n grows.  n is kept ≤ 11 here so every timed run
stays sub-second in Python; ``python -m repro.bench run fig7-regular``
prints the full curve.
"""

import pytest

from conftest import run_algorithm
from repro.workloads.generators import star

#: number of relations n -> star with n-1 satellites
SMALL_NS = (4, 6, 8)
LARGE_NS = (10, 11)


@pytest.mark.parametrize("n", SMALL_NS + LARGE_NS)
@pytest.mark.parametrize("algorithm", ("dphyp", "dpccp"))
def test_fast_algorithms(benchmark, algorithm, n):
    query = star(n - 1, seed=0)
    plan = benchmark(
        run_algorithm, query.graph, query.cardinalities, algorithm
    )
    assert plan is not None


@pytest.mark.parametrize("n", SMALL_NS)
@pytest.mark.parametrize("algorithm", ("dpsize", "dpsub"))
def test_baselines_small(benchmark, algorithm, n):
    query = star(n - 1, seed=0)
    plan = benchmark(
        run_algorithm, query.graph, query.cardinalities, algorithm
    )
    assert plan is not None


@pytest.mark.parametrize("algorithm", ("dpsize", "dpsub"))
def test_baselines_n10(benchmark, algorithm):
    """The largest baseline point: already ~100x DPhyp's time."""
    query = star(9, seed=0)
    plan = benchmark.pedantic(
        run_algorithm,
        args=(query.graph, query.cardinalities, algorithm),
        rounds=3,
        iterations=1,
    )
    assert plan is not None

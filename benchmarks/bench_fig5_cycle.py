"""Fig. 5: cycle-based hypergraphs (8 relations; the 16-relation panel
is run scaled-down to 10 here — DPsub needs ~3^n probes).

Paper shape: DPhyp fastest at every split count; DPsize beats DPsub on
large cycles.  Run ``python -m repro.bench run fig5-cycle16`` (or with
``REPRO_BENCH_FULL=1``) for the full series with ccp counts.
"""

import pytest

from conftest import run_algorithm
from repro.workloads.hyper import cycle_hypergraph, max_splits

ALGORITHMS = ("dphyp", "dpsize", "dpsub")


@pytest.mark.parametrize("splits", range(max_splits(4) + 1))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cycle8(benchmark, algorithm, splits):
    query = cycle_hypergraph(8, splits, seed=0)
    plan = benchmark(
        run_algorithm, query.graph, query.cardinalities, algorithm
    )
    assert plan is not None


@pytest.mark.parametrize("splits", [0, 2, 4])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cycle10(benchmark, algorithm, splits):
    """Scaled stand-in for the 16-relation panel."""
    query = cycle_hypergraph(10, splits, seed=0)
    plan = benchmark(
        run_algorithm, query.graph, query.cardinalities, algorithm
    )
    assert plan is not None

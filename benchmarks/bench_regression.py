#!/usr/bin/env python3
"""Perf-regression entry point: chain/cycle/star timings as JSON.

Thin wrapper over :mod:`repro.bench.regression` so the harness can be
run straight from a checkout (CI smoke job, release benchmarking)::

    python benchmarks/bench_regression.py --max-n 6 --repeat 1
    python benchmarks/bench_regression.py --out BENCH_$(date +%Y%m%d).json

Unlike the ``bench_*`` pytest-benchmark modules next to it, this file
is a plain script: it times the iterative DPhyp against the
seed-faithful recursive baseline and validates the emitted JSON against
the regression schema (see ``repro.bench.regression.SCHEMA_VERSION``).
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench.regression import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 6: star-based hypergraphs (8 satellites; the 16-satellite panel
is represented at 8 — the paper's own DPsize needs >100 s there).

Paper shape: DPhyp highly superior; DPsub superior to DPsize on stars
(the reverse of the cycle ordering).  Full series:
``python -m repro.bench run fig6-star16``.
"""

import pytest

from conftest import run_algorithm
from repro.workloads.hyper import max_splits, star_hypergraph

ALGORITHMS = ("dphyp", "dpsize", "dpsub")


@pytest.mark.parametrize("splits", range(max_splits(4) + 1))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_star8(benchmark, algorithm, splits):
    query = star_hypergraph(8, splits, seed=0)
    plan = benchmark(
        run_algorithm, query.graph, query.cardinalities, algorithm
    )
    assert plan is not None

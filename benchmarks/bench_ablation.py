"""Ablation: DPhyp design choices.

Two knobs DESIGN.md calls out:

1. **Neighborhood subsumption minimization** (the ``E↓`` step of
   Sec. 2.3).  Correctness never depends on it — representatives still
   stand for full hypernodes and the DP-table check rejects invalid
   growth — so it is purely a work-saving device.  Measured effect on
   hyperedge-dense random graphs: a few percent fewer neighborhood
   computations / subset probes; the paper's workloads (one hyperedge
   family over a simple skeleton) barely exercise it.

2. **Cost model** — C_out vs. asymmetric hash-join costing: the same
   enumeration, different plan pricing; quantifies that enumeration,
   not costing, dominates optimization time.
"""

import pytest

from repro.core.dphyp import DPhyp
from repro.core.plans import JoinPlanBuilder
from repro.cost.models import CoutModel, HashJoinModel, MinOfModel
from repro.workloads.hyper import star_hypergraph
from repro.workloads.random_queries import random_hypergraph_query


def run_dphyp(graph, cardinalities, minimize, cost_model=None):
    builder = JoinPlanBuilder(graph, cardinalities, cost_model=cost_model)
    solver = DPhyp(graph, builder, minimize_neighborhoods=minimize)
    plan = solver.run()
    assert plan is not None
    return solver


@pytest.mark.parametrize("minimize", [True, False],
                         ids=["minimized", "unminimized"])
def test_subsumption_on_dense_hypergraph(benchmark, minimize):
    query = random_hypergraph_query(
        10, seed=3, n_hyperedges=8, max_hypernode=4, n_islands=3
    )
    solver = benchmark(
        run_dphyp, query.graph, query.cardinalities, minimize
    )
    assert solver.stats.ccp_emitted > 0


@pytest.mark.parametrize("minimize", [True, False],
                         ids=["minimized", "unminimized"])
def test_subsumption_on_star_hypergraph(benchmark, minimize):
    query = star_hypergraph(8, 1, seed=3)
    benchmark(run_dphyp, query.graph, query.cardinalities, minimize)


@pytest.mark.parametrize(
    "model",
    [CoutModel(), HashJoinModel(), MinOfModel()],
    ids=["cout", "hashjoin", "min-of"],
)
def test_cost_model_overhead(benchmark, model):
    query = star_hypergraph(8, 0, seed=3)
    benchmark(run_dphyp, query.graph, query.cardinalities, True, model)

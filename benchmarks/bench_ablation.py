"""Ablation: DPhyp design choices.

Four knobs measured here:

1. **Neighborhood subsumption minimization** (the ``E↓`` step of
   Sec. 2.3).  Correctness never depends on it — representatives still
   stand for full hypernodes and the DP-table check rejects invalid
   growth — so it is purely a work-saving device.  Measured effect on
   hyperedge-dense random graphs: a few percent fewer neighborhood
   computations / subset probes; the paper's workloads (one hyperedge
   family over a simple skeleton) barely exercise it.

2. **Cost model** — C_out vs. asymmetric hash-join costing: the same
   enumeration, different plan pricing; quantifies that enumeration,
   not costing, dominates optimization time.

3. **Neighborhood memoization** — the per-subgraph
   ``simple_neighborhood`` cache of
   :class:`repro.core.neighborhood.NeighborhoodIndex`; again purely
   work-saving, never correctness-bearing.

4. **Iterative vs. recursive traversal** — the explicit-stack hot path
   against the seed-faithful recursion preserved in
   :mod:`repro.core.dphyp_recursive`.
"""

import pytest

from repro.core.dphyp import DPhyp
from repro.core.dphyp_recursive import DPhypRecursive
from repro.core.plans import JoinPlanBuilder
from repro.cost.models import CoutModel, HashJoinModel, MinOfModel
from repro.workloads import star
from repro.workloads.hyper import star_hypergraph
from repro.workloads.random_queries import random_hypergraph_query


def run_dphyp(graph, cardinalities, minimize, cost_model=None,
              memoize=True, solver_class=DPhyp):
    builder = JoinPlanBuilder(graph, cardinalities, cost_model=cost_model)
    solver = solver_class(
        graph,
        builder,
        minimize_neighborhoods=minimize,
        memoize_neighborhoods=memoize,
    )
    plan = solver.run()
    assert plan is not None
    return solver


@pytest.mark.parametrize("minimize", [True, False],
                         ids=["minimized", "unminimized"])
def test_subsumption_on_dense_hypergraph(benchmark, minimize):
    query = random_hypergraph_query(
        10, seed=3, n_hyperedges=8, max_hypernode=4, n_islands=3
    )
    solver = benchmark(
        run_dphyp, query.graph, query.cardinalities, minimize
    )
    assert solver.stats.ccp_emitted > 0


@pytest.mark.parametrize("minimize", [True, False],
                         ids=["minimized", "unminimized"])
def test_subsumption_on_star_hypergraph(benchmark, minimize):
    query = star_hypergraph(8, 1, seed=3)
    benchmark(run_dphyp, query.graph, query.cardinalities, minimize)


@pytest.mark.parametrize(
    "model",
    [CoutModel(), HashJoinModel(), MinOfModel()],
    ids=["cout", "hashjoin", "min-of"],
)
def test_cost_model_overhead(benchmark, model):
    query = star_hypergraph(8, 0, seed=3)
    benchmark(run_dphyp, query.graph, query.cardinalities, True, model)


@pytest.mark.parametrize("memoize", [True, False],
                         ids=["memoized", "unmemoized"])
def test_neighborhood_memoization(benchmark, memoize):
    """Knob 3: the per-subgraph simple_neighborhood cache."""
    query = star(9, seed=3)
    solver = benchmark(
        run_dphyp, query.graph, query.cardinalities, True, None, memoize
    )
    if memoize:
        assert solver.stats.neighborhood_cache_hits > 0
    else:
        assert solver.stats.neighborhood_cache_hits == 0


@pytest.mark.parametrize(
    "solver_class",
    [DPhyp, DPhypRecursive],
    ids=["iterative", "recursive"],
)
def test_traversal_strategy(benchmark, solver_class):
    """Knob 4: explicit-stack hot path vs. the seed recursion.

    Both run with memoization on; what differs is the seed's traversal
    and its full-edge-list connectivity scans (see
    :mod:`repro.core.dphyp_recursive` — the configuration that
    ``bench_regression.py`` tracks over time).
    """
    query = star(9, seed=3)
    solver = benchmark(
        run_dphyp, query.graph, query.cardinalities, True, None, True,
        solver_class,
    )
    assert solver.stats.ccp_emitted == 9 * 2 ** 8

"""Shared helpers for the pytest-benchmark suite.

Each benchmark module regenerates one table/figure of the paper at
pytest-benchmark-friendly sizes (every timed run well under a second).
The full paper-style series — including the scaled-up sizes and the
ccp counters — come from ``python -m repro.bench run all``; these
benchmarks pin the per-configuration timings and let
``pytest benchmarks/ --benchmark-only`` track regressions.
"""

from __future__ import annotations

from repro.api import ALGORITHMS
from repro.core.plans import JoinPlanBuilder
from repro.core.stats import SearchStats


def run_algorithm(graph, cardinalities, algorithm: str):
    """One cold optimizer run (what the paper times)."""
    stats = SearchStats()
    builder = JoinPlanBuilder(graph, cardinalities, stats=stats)
    return ALGORITHMS[algorithm](graph, builder, stats)

"""Fig. 8a: star query with increasing antijoins —
hypergraph-derived edges vs. generate-and-test on TESs.

Paper shape: both curves fall as antijoins restrict the search space,
but the hypergraph formulation is far ahead because it never generates
the plans the TES test would discard.  Run
``python -m repro.bench run fig8a-antijoin`` for the full series.
"""

import pytest

from repro.algebra.pipeline import optimize_operator_tree
from repro.workloads.nonreorderable import star_antijoin_tree

N_SATELLITES = 8


def optimize_mode(tree, mode):
    result = optimize_operator_tree(tree, mode=mode)
    assert result.plan is not None
    return result


@pytest.mark.parametrize("n_antijoins", [0, 2, 4, 6, 8])
@pytest.mark.parametrize("mode", ["hyperedges", "tes-filter"])
def test_star_antijoins(benchmark, mode, n_antijoins):
    tree = star_antijoin_tree(N_SATELLITES, n_antijoins, seed=7)
    result = benchmark(optimize_mode, tree, mode)
    # the search-space collapse that drives the figure:
    if n_antijoins == N_SATELLITES and mode == "hyperedges":
        assert result.stats.ccp_emitted <= N_SATELLITES

#!/usr/bin/env python3
"""Tour of the Optimizer facade: auto dispatch, batching, caching.

Five things the unified front door gives you beyond the one-shot
entry points:

1. **Capability-aware auto dispatch** — one Optimizer picks DPccp for
   small simple graphs, DPhyp for hypergraphs with complex edges, and
   the greedy heuristic beyond the exact-search size threshold, purely
   from the registry metadata.
2. **Batch throughput** — optimize_many() pushes a mixed workload
   through one configured instance; to_dict() makes every result
   JSON-serializable for downstream services.
3. **An extension point** — register_algorithm() plugs a new solver
   into every entry point (facade, legacy wrappers, bench harness)
   without editing core files.
4. **The plan cache** — repeated (even relabeled/isomorphic) queries
   are served by canonical fingerprint lookup + recipe replay instead
   of re-enumeration; optimize_many() uses it by default.
5. **Persistence** — with OptimizerConfig(cache_path=...) the cache
   survives the process: autosaved after each batch, auto-loaded on
   the next start, so a restarted server's first repeated query is
   already a cache hit.

Run:  python examples/facade_tour.py
"""

import json
import os
import tempfile
import time

from repro import (
    AlgorithmInfo,
    Optimizer,
    OptimizerConfig,
    QuerySpec,
    register_algorithm,
    unregister_algorithm,
)
from repro.workloads import generators
from repro.workloads.repeated import repeated_workload


def main() -> None:
    # -- 1. auto dispatch across query shapes ---------------------------
    spec_with_complex_join = QuerySpec(
        relations={"r1": 100, "r2": 500, "r3": 1_000, "r4": 250},
        joins=[
            ("r1", "r2", 0.01),
            ("r3", "r4", 0.02),
            # n-ary predicate f(r1, r2) = g(r3, r4) as a hyperedge
            {"left": ["r1", "r2"], "right": ["r3", "r4"],
             "selectivity": 0.001,
             "predicate": "f(r1.a, r2.b) = g(r3.c, r4.d)"},
        ],
    )
    workload = [
        generators.chain(5),        # small simple graph  -> dpccp
        generators.star(6),         # small simple graph  -> dpccp
        generators.cycle(12),       # mid-size simple     -> dphyp
        spec_with_complex_join,     # complex hyperedge   -> dphyp
        generators.chain(20),       # beyond threshold    -> greedy
    ]
    auto = Optimizer()  # OptimizerConfig(algorithm="auto") by default
    print(f"{'query':>22}  {'auto picked':>11}  {'cost':>16}")
    results = auto.optimize_many(workload)
    for query, result in zip(workload, results):
        label = getattr(query, "description", "") or "complex-join spec"
        print(f"{label:>22}  {result.algorithm:>11}  {result.cost:>16,.0f}")

    # -- 2. JSON-ready results -----------------------------------------
    document = results[3].to_dict()
    print()
    print("to_dict() of the complex-join query (truncated):")
    print(json.dumps(
        {k: document[k] for k in
         ("algorithm", "requested_algorithm", "relation_names", "cost")},
        indent=2,
    ))
    print("EXPLAIN shows the predicate annotation from the QuerySpec:")
    print(results[3].explain())

    # -- 3. registering a custom solver ---------------------------------
    def solve_rightdeep(graph, builder, stats):
        """Toy heuristic: join relations left-to-right in index order."""
        plan = builder.leaf(graph.n_nodes - 1)
        for node in range(graph.n_nodes - 2, -1, -1):
            left = builder.leaf(node)
            edges = graph.connecting_edges(left.nodes, plan.nodes)
            candidates = builder.join_unordered(left, plan, edges)
            plan = min(candidates, key=lambda p: p.cost)
        return plan

    register_algorithm(AlgorithmInfo(
        name="rightdeep",
        solver=solve_rightdeep,
        exact=False,
        description="toy right-deep heuristic from the facade tour",
    ))
    try:
        query = generators.chain(8)
        ours = Optimizer(OptimizerConfig(algorithm="rightdeep")).optimize(query)
        best = Optimizer(OptimizerConfig(algorithm="dphyp")).optimize(query)
        print()
        print(f"registered 'rightdeep' heuristic: cost {ours.cost:,.0f} "
              f"vs optimal {best.cost:,.0f} "
              f"({ours.cost / best.cost:.2f}x)")
    finally:
        unregister_algorithm("rightdeep")

    # -- 4. the plan cache: serving a repeated workload -----------------
    # 20 copies of one star query, each with its nodes, names, and edge
    # order permuted — the same query as different clients would send
    # it.  The canonical fingerprint maps all of them to ONE cache
    # entry; after the first enumeration every copy is served by
    # replaying the cached join order through its own plan builder.
    batch = repeated_workload(generators.star(8, seed=21), copies=20)
    server = Optimizer()   # cache="auto": on for optimize_many

    start = time.perf_counter()
    cold = server.optimize_many(batch, cache=False)   # pre-cache behaviour
    cold_ms = (time.perf_counter() - start) * 1000

    server.optimize_many(batch)                        # warm the cache
    start = time.perf_counter()
    hot = server.optimize_many(batch)                  # pure hits
    hot_ms = (time.perf_counter() - start) * 1000

    events = [r.stats.extra["plan_cache"]["event"] for r in hot]
    print()
    print(f"plan cache on {len(batch)} relabeled copies of star-8:")
    print(f"  cold (cache off): {cold_ms:7.1f} ms   "
          f"hot (all {events.count('hit')} hits): {hot_ms:7.1f} ms   "
          f"speedup {cold_ms / hot_ms:.1f}x")
    print(f"  cache entries: {len(server.plan_cache)} "
          f"(isomorphic copies share one), "
          f"hit rate {server.plan_cache.hit_rate:.0%}")
    assert all(
        abs(h.cost - c.cost) <= 1e-9 * c.cost for h, c in zip(hot, cold)
    )

    # -- 5. persistence: surviving a process restart --------------------
    # Same batch, but the cache lives at cache_path.  The first server
    # boots cold, pays the one enumeration, and autosaves at the end of
    # the batch.  The "restarted" server (a brand-new Optimizer, as
    # after a kill -9 + reboot) auto-loads the file and serves its very
    # first query by recipe replay.
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "plan-cache.json")
        config = OptimizerConfig(cache="on", cache_path=cache_path)

        first_boot = Optimizer(config)
        start = time.perf_counter()
        first_boot.optimize_many(batch)              # cold + autosave
        cold_boot_ms = (time.perf_counter() - start) * 1000
        size_kb = os.path.getsize(cache_path) / 1024

        restarted = Optimizer(config)                # simulated restart
        start = time.perf_counter()
        warm = restarted.optimize_many(batch)        # auto-loaded, all hits
        warm_boot_ms = (time.perf_counter() - start) * 1000

        first_event = warm[0].stats.extra["plan_cache"]["event"]
        print()
        print("persistence across a simulated restart "
              f"(cache file: {size_kb:.1f} KiB):")
        print(f"  cold boot: {cold_boot_ms:7.1f} ms   "
              f"warm restart: {warm_boot_ms:7.1f} ms   "
              f"speedup {cold_boot_ms / warm_boot_ms:.1f}x")
        print(f"  first query after restart: {first_event!r}, "
              f"restored entries: "
              f"{restarted.plan_cache.counters()['restored']}")
        assert first_event == "hit"


if __name__ == "__main__":
    main()

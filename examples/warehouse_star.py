#!/usr/bin/env python3
"""Data-warehouse star query at scale: exact DP vs. greedy.

"Star queries are common in data warehousing and thus deserve special
attention" (Section 4.3).  This example builds a star with a fact table
and ten dimensions with realistic cardinality skew, then:

1. shows how fast the exact search space grows (csg-cmp-pairs),
2. compares DPhyp's optimum against the GOO greedy heuristic — two
   configured Optimizer instances batch-processing the same queries
   via optimize_many,
3. demonstrates a cross-dimension complex predicate as a hyperedge —
   DPhyp supports it natively, and (unlike naive n-ary handling) it
   does not blow up the enumerated search space.

Run:  python examples/warehouse_star.py
"""

import time

from repro import Hyperedge, Hypergraph, Optimizer, OptimizerConfig
from repro.core import bitset
from repro.cost.catalog import Catalog
from repro.workloads.generators import Query


def build_catalog(n_dimensions: int) -> Catalog:
    catalog = Catalog()
    catalog.add("sales", 10_000_000.0, {"date_id": 2_000.0, "cust_id": 40_000.0})
    sizes = [2_000, 40_000, 500, 100, 5_000, 1_200, 80, 300, 9_000, 60]
    for i in range(n_dimensions):
        catalog.add(f"dim{i}", float(sizes[i % len(sizes)]))
    return catalog


def build_star(catalog: Catalog, with_hyperedge: bool = False) -> Hypergraph:
    n = len(catalog)
    graph = Hypergraph(n_nodes=n, node_names=catalog.names)
    for i in range(1, n):
        selectivity = 1.0 / catalog.get(f"dim{i - 1}").cardinality
        graph.add_simple_edge(0, i, selectivity=selectivity)
    if with_hyperedge:
        # a cross-dimension business rule, e.g.
        # f(dim0.date, dim1.cust) = g(dim2.channel, dim3.promo)
        graph.add_edge(
            Hyperedge(
                left=bitset.set_of(1, 2),
                right=bitset.set_of(3, 4),
                selectivity=0.25,
                payload="f(dim0.date, dim1.cust) = g(dim2.channel, dim3.promo)",
            )
        )
    return graph


def main() -> None:
    exact = Optimizer(OptimizerConfig(algorithm="dphyp"))
    greedy = Optimizer(OptimizerConfig(algorithm="greedy"))

    # One Query bundle per star size; both optimizers batch over them.
    queries = []
    for n_dimensions in (4, 6, 8, 10):
        catalog = build_catalog(n_dimensions)
        queries.append(Query(
            graph=build_star(catalog),
            cardinalities=catalog.cardinalities,
            description=f"star-{n_dimensions}d",
        ))

    start = time.perf_counter()
    exact_results = exact.optimize_many(queries)
    exact_ms = (time.perf_counter() - start) * 1000
    greedy_results = greedy.optimize_many(queries)

    print(f"{'dims':>4}  {'ccps':>8}  {'greedy/optimal':>14}")
    for query, e, g in zip(queries, exact_results, greedy_results):
        ratio = g.cost / e.cost
        print(f"{query.n_relations - 1:>4}  {e.stats.ccp_emitted:>8}  "
              f"{ratio:>13.3f}x")
    print(f"(exact batch took {exact_ms:.2f} ms for all four stars)")

    print()
    catalog = build_catalog(10)
    cards = catalog.cardinalities
    plain = exact.optimize(build_star(catalog), cards)
    fenced = exact.optimize(build_star(catalog, with_hyperedge=True), cards)
    print("search space without cross-dimension hyperedge:",
          plain.stats.ccp_emitted, "ccps")
    print("search space with    cross-dimension hyperedge:",
          fenced.stats.ccp_emitted, "ccps")
    print("(the n-ary predicate rides along as a hyperedge without")
    print(" inflating the enumeration — the point of DPhyp)")
    print()
    print("optimal plan (10 dimensions):")
    print(" ", plain.plan.render(catalog.names))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Complex (n-ary) join predicates — the paper's Fig. 2 hypergraph.

The predicate  R1.a + R2.b + R3.c = R4.d + R5.e + R6.f  cannot be
represented in an ordinary query graph: it connects two *groups* of
relations.  DPhyp models it as the hyperedge
({R1,R2,R3}, {R4,R5,R6}) and still enumerates exactly the
csg-cmp-pairs — here 9 of them, against the 2^6-scale subset space
DPsub has to probe.  ``algorithm="auto"`` recognizes the complex edge
and dispatches to DPhyp (never DPccp, which handles simple graphs
only).

The script also shows Section 6's generalized hyperedges: when R3 is
algebraically movable (R1.a + R2.b = R4.d + R5.e + R6.f - R3.c), the
edge becomes ({R1,R2}, {R4,R5,R6}, {R3}).  With R3's simple edges
attached to the *right* cluster, the pinned edge admits no
cross-product-free plan at all — {R1,R2,R3} is never connected — while
the flex edge lets R3 travel to the side where its neighbours live.

Run:  python examples/complex_predicates.py
"""

from repro import (
    CapabilityError,
    DisconnectedGraphError,
    Hyperedge,
    Hypergraph,
    Optimizer,
)
from repro.core import bitset
from repro.core.exhaustive import count_csg_cmp_pairs


def build_fig2(flex_r3: bool = False, r3_attached_right: bool = False) -> Hypergraph:
    graph = Hypergraph(
        n_nodes=6, node_names=[f"R{i}" for i in range(1, 7)]
    )
    graph.add_simple_edge(0, 1, selectivity=0.01)  # R1 - R2
    if r3_attached_right:
        graph.add_simple_edge(2, 3, selectivity=0.05)  # R3 - R4
    else:
        graph.add_simple_edge(1, 2, selectivity=0.05)  # R2 - R3
    graph.add_simple_edge(3, 4, selectivity=0.02)  # R4 - R5
    graph.add_simple_edge(4, 5, selectivity=0.04)  # R5 - R6
    if flex_r3:
        # R3 may move to either side of the equation (Definition 6)
        graph.add_edge(
            Hyperedge(
                left=bitset.set_of(0, 1),
                right=bitset.set_of(3, 4, 5),
                flex=bitset.set_of(2),
                selectivity=0.001,
            )
        )
    else:
        graph.add_edge(
            Hyperedge(
                left=bitset.set_of(0, 1, 2),
                right=bitset.set_of(3, 4, 5),
                selectivity=0.001,
            )
        )
    return graph


def main() -> None:
    cardinalities = [100.0, 500.0, 1_000.0, 250.0, 800.0, 50.0]

    graph = build_fig2()
    print(graph.render())
    print()
    print("csg-cmp-pairs (exact search space):", count_csg_cmp_pairs(graph))

    auto = Optimizer().optimize(graph, cardinalities)
    print(f"   auto: dispatched to {auto.algorithm} "
          "(complex hyperedge rules out DPccp)")
    for algorithm in ("dphyp", "dpsize", "dpsub"):
        result = Optimizer(algorithm=algorithm).optimize(graph, cardinalities)
        print(
            f"{algorithm:>7}: cost {result.cost:>14,.0f}   "
            f"pairs considered {result.stats.pairs_considered:>5}   "
            f"plan {result.plan.render(graph.node_names)}"
        )
    try:
        Optimizer(algorithm="dpccp").optimize(graph, cardinalities)
    except CapabilityError as error:
        print(f"  dpccp: rejected at dispatch — {error}")

    print()
    print("-- with R3 as a flex relation (generalized hyperedge) --")
    print("   (R3's simple edge now attaches it to the R4 cluster)")
    pinned = build_fig2(flex_r3=False, r3_attached_right=True)
    flexible = build_fig2(flex_r3=True, r3_attached_right=True)
    print("csg-cmp-pairs, R3 pinned left:", count_csg_cmp_pairs(pinned))
    print("csg-cmp-pairs, R3 flexible   :", count_csg_cmp_pairs(flexible))
    dphyp = Optimizer(algorithm="dphyp")
    # The pinned edge strands {R1,R2,R3}: the facade reports the
    # missing cross-product-free plan as an explicit error instead of
    # the legacy silent plan=None.
    try:
        dphyp.optimize(pinned, cardinalities)
        print("pinned edge  : unexpectedly plannable?!")
    except DisconnectedGraphError:
        print("pinned edge  : no cross-product-free plan "
              "(DisconnectedGraphError)")
    result = dphyp.optimize(flexible, cardinalities)
    print("flex edge    :", result.plan.render(flexible.node_names))
    print(f"cost         : {result.cost:,.0f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""EXPLAIN output and outer-join simplification.

A query written with a gratuitous outer join:

    SELECT ... FROM (R LEFT OUTER JOIN S ON R.a = S.a)
               JOIN T ON S.a = T.a

The join predicate `S.a = T.a` is strong on S: NULL-padded rows can
never survive it, so the outer join is really an inner join.  The
simplification pass (the preprocessing the paper assumes in Sec. 5.2)
detects this, which unlocks the full reordering freedom.  The facade
accepts the operator tree directly, and ``result.explain()`` renders
the EXPLAIN tree with relation names plumbed through automatically.

Run:  python examples/explain_and_simplify.py
"""

from repro import Optimizer
from repro.algebra import (
    Equals,
    JOIN,
    LEFT_OUTER,
    attr,
    count_outer_joins,
    leaf,
    node,
    render_tree,
    simplify_outer_joins,
)
from repro.algebra.optree import Relation


def build_query():
    r = leaf(Relation("R", cardinality=1_000_000.0))
    s = leaf(Relation("S", cardinality=50_000.0))
    t = leaf(Relation("T", cardinality=40.0))
    joined = node(
        LEFT_OUTER, r, s,
        Equals(attr("R.a"), attr("S.a"), selectivity=1 / 50_000),
    )
    return node(
        JOIN, joined, t,
        Equals(attr("S.a"), attr("T.a"), selectivity=1 / 40),
    )


def main() -> None:
    tree = build_query()
    print("query        :", render_tree(tree))
    print("outer joins  :", count_outer_joins(tree))

    optimizer = Optimizer()  # algorithm="auto", one instance for both runs
    raw = optimizer.optimize(tree)
    print()
    print("-- optimized as written (outer join pins the order) --")
    print(raw.explain())
    print(f"explored ccps: {raw.stats.ccp_emitted}, cost {raw.cost:,.0f}")

    simplified = simplify_outer_joins(tree)
    print()
    print("simplified   :", render_tree(simplified))
    print("outer joins  :", count_outer_joins(simplified))

    cooked = optimizer.optimize(simplified)
    print()
    print("-- optimized after simplification --")
    print(cooked.explain())
    print(f"explored ccps: {cooked.stats.ccp_emitted}, cost {cooked.cost:,.0f}")
    print()
    improvement = raw.cost / cooked.cost
    print(f"simplification unlocked a {improvement:.2f}x cheaper plan "
          f"(tiny T can now join first)")


if __name__ == "__main__":
    main()

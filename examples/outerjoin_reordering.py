#!/usr/bin/env python3
"""Reordering non-inner joins safely (Section 5 end-to-end).

A reporting query over real (tiny) data:

    (customer  LEFT OUTER JOIN  orders)  JOIN  nation   SEMI  vip

The left outer join must not be reordered arbitrarily — pushing the
nation join below it would drop customers without orders.  The SES/TES
conflict analysis derives hyperedges that encode exactly the valid
orders; DPhyp then picks the cheapest one.  To prove nothing broke, the
script *executes* both the initial tree and the optimized plan and
compares the result bags row by row.

This example deliberately sticks to the *legacy* entry point
(`optimize_operator_tree`) to show the wrappers still work unchanged;
the other examples use the `repro.Optimizer` facade, which accepts the
same operator tree directly.

Run:  python examples/outerjoin_reordering.py
"""

from repro.algebra import (
    Equals,
    JOIN,
    LEFT_OUTER,
    SEMI,
    attr,
    leaf,
    node,
    optimize_operator_tree,
    render_tree,
)
from repro.engine import (
    base_relation,
    evaluate_plan,
    evaluate_tree,
    rows_as_bag,
)

customer = base_relation(
    "customer",
    ["id", "nation", "name"],
    [
        (1, 10, "alice"),
        (2, 10, "bob"),
        (3, 20, "carol"),
        (4, 30, "dave"),
    ],
)
orders = base_relation(
    "orders",
    ["cust", "total"],
    [(1, 100), (1, 250), (3, 75)],
)
nation = base_relation(
    "nation",
    ["key", "region"],
    [(10, "emea"), (20, "apac"), (30, "amer")],
)
vip = base_relation("vip", ["cust_id"], [(1,), (4,)])


def build_tree():
    joined = node(
        LEFT_OUTER,
        leaf(customer),
        leaf(orders),
        Equals(attr("customer.id"), attr("orders.cust"), selectivity=0.3),
    )
    with_nation = node(
        JOIN,
        joined,
        leaf(nation),
        Equals(attr("customer.nation"), attr("nation.key"), selectivity=0.33),
    )
    return node(
        SEMI,
        with_nation,
        leaf(vip),
        Equals(attr("customer.id"), attr("vip.cust_id"), selectivity=0.5),
    )


def main() -> None:
    tree = build_tree()
    print("initial tree :", render_tree(tree))

    result = optimize_operator_tree(tree)
    names = result.relation_names
    print("optimized    :", result.plan.render(names))
    print(f"C_out cost   : {result.cost:,.1f}")
    print(f"ccps explored: {result.stats.ccp_emitted}")
    print()
    print("derived hypergraph (conflicts folded into hyperedges):")
    print(result.compiled.graph.render())
    print()

    before = rows_as_bag(evaluate_tree(tree))
    after = rows_as_bag(
        evaluate_plan(result.plan, result.compiled.analysis.relations)
    )
    assert before == after, "reordering changed the query result!"
    print(f"executed both versions: identical {len(before)} rows ✓")
    for row in evaluate_plan(result.plan, result.compiled.analysis.relations):
        print("  ", {k: v for k, v in sorted(row.items())})


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: optimal join ordering with DPhyp in ten lines.

Builds a five-relation chain query, optimizes it with DPhyp, and
compares all enumeration algorithms plus the greedy heuristic.

Run:  python examples/quickstart.py
"""

from repro import Hypergraph, optimize

# A chain query: customer -> orders -> lineitem -> part -> supplier.
names = ["customer", "orders", "lineitem", "part", "supplier"]
cardinalities = [15_000, 150_000, 600_000, 20_000, 1_000]

graph = Hypergraph(n_nodes=5, node_names=names)
graph.add_simple_edge(0, 1, selectivity=1 / 15_000)   # c_custkey = o_custkey
graph.add_simple_edge(1, 2, selectivity=1 / 150_000)  # o_orderkey = l_orderkey
graph.add_simple_edge(2, 3, selectivity=1 / 20_000)   # l_partkey = p_partkey
graph.add_simple_edge(3, 4, selectivity=1 / 1_000)    # p_suppkey = s_suppkey


def main() -> None:
    result = optimize(graph, cardinalities)  # algorithm="dphyp"
    print("optimal plan :", result.plan.render(names))
    print(f"estimated out: {result.plan.cardinality:,.0f} rows")
    print(f"C_out cost   : {result.cost:,.0f}")
    print(f"csg-cmp-pairs: {result.stats.ccp_emitted}")
    print()

    print(f"{'algorithm':>10}  {'cost':>14}  {'pairs considered':>16}")
    for algorithm in ("dphyp", "dpccp", "dpsize", "dpsub", "topdown", "greedy"):
        r = optimize(graph, cardinalities, algorithm=algorithm)
        pairs = r.stats.pairs_considered or r.stats.ccp_emitted
        print(f"{algorithm:>10}  {r.cost:>14,.0f}  {pairs:>16}")
    print()
    print("All exact algorithms find the same optimum; DPhyp/DPccp do it")
    print("without ever considering a pair that fails the connectivity test.")


if __name__ == "__main__":
    main()

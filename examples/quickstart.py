#!/usr/bin/env python3
"""Quickstart: optimal join ordering through the Optimizer facade.

Declares a five-relation chain query as a QuerySpec, lets
algorithm="auto" pick the right enumerator, prints the EXPLAIN tree,
and compares all registered algorithms through one reusable Optimizer.

Run:  python examples/quickstart.py
"""

from repro import Optimizer, OptimizerConfig, QuerySpec

# A chain query: customer -> orders -> lineitem -> part -> supplier.
spec = QuerySpec(
    relations={
        "customer": 15_000,
        "orders": 150_000,
        "lineitem": 600_000,
        "part": 20_000,
        "supplier": 1_000,
    },
    joins=[
        ("customer", "orders", 1 / 15_000),    # c_custkey = o_custkey
        ("orders", "lineitem", 1 / 150_000),   # o_orderkey = l_orderkey
        ("lineitem", "part", 1 / 20_000),      # l_partkey = p_partkey
        ("part", "supplier", 1 / 1_000),       # p_suppkey = s_suppkey
    ],
)


def main() -> None:
    result = Optimizer().optimize(spec)  # algorithm="auto"
    print(f"auto picked  : {result.algorithm}")
    print("optimal plan :", result.plan.render(result.relation_names))
    print(f"estimated out: {result.cardinality:,.0f} rows")
    print(f"C_out cost   : {result.cost:,.0f}")
    print(f"csg-cmp-pairs: {result.stats.ccp_emitted}")
    print()
    print(result.explain())
    print()

    print(f"{'algorithm':>10}  {'cost':>14}  {'pairs considered':>16}")
    for algorithm in ("dphyp", "dpccp", "dpsize", "dpsub", "topdown", "greedy"):
        opt = Optimizer(OptimizerConfig(algorithm=algorithm))
        r = opt.optimize(spec)
        pairs = r.stats.pairs_considered or r.stats.ccp_emitted
        print(f"{algorithm:>10}  {r.cost:>14,.0f}  {pairs:>16}")
    print()
    print("All exact algorithms find the same optimum; DPhyp/DPccp do it")
    print("without ever considering a pair that fails the connectivity test.")


if __name__ == "__main__":
    main()
